//! Declarative, cached experiment campaigns.
//!
//! The paper's methodology is always the same shape: a grid of cells
//! (scenario × nodes × ppn × stripe count × chooser × data size), 100
//! randomized repetitions per cell. Instead of every figure hand-rolling
//! that loop, a [`Campaign`] *describes* the grid and the
//! [`CampaignEngine`] executes it:
//!
//! * cells and repetitions run in parallel (rayon), each rep on its own
//!   deterministic RNG stream (`stream(label, rep)`), so results are
//!   independent of thread scheduling and repetition order;
//! * finished cells persist to a content-addressed [`ResultStore`] keyed
//!   by a stable hash of the cell's full identity — re-running a
//!   campaign skips every cell already on disk, an interrupted campaign
//!   resumes where it stopped, and a `reps = 100` campaign reuses the
//!   prefix a `reps = 10` run already produced;
//! * the engine reports per-campaign observability: cells cached /
//!   partial / computed / failed, rep-level cache hit rate, and
//!   simulated seconds per wall second.
//!
//! ```no_run
//! use experiments::campaign::{Campaign, CampaignEngine, CellConfig};
//! use experiments::Scenario;
//! use beegfs_core::ChooserKind;
//! use ior::IorConfig;
//!
//! let campaign = Campaign::new("demo", 42).cell(
//!     "s4-n8",
//!     CellConfig::new(
//!         Scenario::S1Ethernet,
//!         4,
//!         ChooserKind::RoundRobin,
//!         IorConfig::paper_default(8),
//!     ),
//!     100,
//! );
//! let engine = CampaignEngine::with_store("results/cache")?;
//! let outcome = engine.run(&campaign)?;
//! println!("{}", outcome.stats.summary());
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

mod store;

pub use store::{cell_key, CellRecord, ResultStore, MODEL_VERSION};

use crate::context::{deploy, deploy_on, Scenario};
use beegfs_core::{Allocation, ChooserKind, FaultPlan};
use ior::{AppSpec, FileLayout, HedgeConfig, IorConfig, RetryPolicy, Run, RunError, SimArena};
use rayon::prelude::*;
use sched::{AdmissionMode, ArrivalStream, SchedError, Scheduler};
use serde::{Deserialize, Serialize};
use simcore::rng::RngFactory;
use std::fmt;
use std::path::Path;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::time::Instant;

/// Everything that determines one cell's simulated workload.
///
/// The field set is deliberately flat and fully serializable: its
/// canonical JSON (plus campaign name, seed and [`MODEL_VERSION`]) *is*
/// the cell's cache identity — see [`cell_key`].
#[derive(Debug, Clone, PartialEq)]
pub struct CellConfig {
    /// Which platform scenario to deploy.
    pub scenario: Scenario,
    /// Directory stripe count.
    pub stripe_count: u32,
    /// Directory target chooser.
    pub chooser: ChooserKind,
    /// Compute nodes per application.
    pub nodes: usize,
    /// Processes per node.
    pub ppn: u32,
    /// Aggregate bytes written per application.
    pub total_bytes: u64,
    /// Transfer (request) size, bytes.
    pub transfer_size: u64,
    /// File layout (N-1 or N-N).
    pub layout: FileLayout,
    /// Access direction.
    pub mode: storage::AccessMode,
    /// How many identical applications run concurrently (1 = the paper's
    /// usual single-application run; Fig. 12 uses more).
    pub apps: u32,
    /// Optional mid-run fault timeline.
    pub faults: Option<FaultPlan>,
    /// Optional client retry policy (used with `faults`).
    pub policy: Option<RetryPolicy>,
    /// Optional online-scheduling workload: when set, each repetition
    /// serves a generated arrival stream through the `sched` crate's
    /// scheduler instead of launching `apps` concurrent applications at
    /// `t = 0`. Kept out of the serialized form when absent so existing
    /// cells' cache identities are untouched.
    pub sched: Option<SchedWorkload>,
    /// Optional explicit fleet: when set, repetitions deploy on the
    /// platform this [`cluster::FleetSpec`] builds (natural registration
    /// order) instead of the scenario's preset — datacenter-scale cells
    /// parameterize their fleet right in the cell config, and the cache
    /// key captures the exact fleet. Kept out of the serialized form
    /// when absent so existing cells' cache identities are untouched.
    pub fleet: Option<cluster::FleetSpec>,
}

// Hand-written (de)serialization: the `sched` entry is omitted when
// absent — the canonical JSON of a pre-scheduler cell, and therefore
// its cache key, is byte-identical to what older builds produced — and
// tolerated when missing, so stored cells from before the field existed
// still load.
impl Serialize for CellConfig {
    fn to_value(&self) -> serde::Value {
        let mut entries: Vec<(String, serde::Value)> = vec![
            ("scenario".into(), self.scenario.to_value()),
            ("stripe_count".into(), self.stripe_count.to_value()),
            ("chooser".into(), self.chooser.to_value()),
            ("nodes".into(), self.nodes.to_value()),
            ("ppn".into(), self.ppn.to_value()),
            ("total_bytes".into(), self.total_bytes.to_value()),
            ("transfer_size".into(), self.transfer_size.to_value()),
            ("layout".into(), self.layout.to_value()),
            ("mode".into(), self.mode.to_value()),
            ("apps".into(), self.apps.to_value()),
            ("faults".into(), self.faults.to_value()),
            ("policy".into(), self.policy.to_value()),
        ];
        if let Some(s) = &self.sched {
            entries.push(("sched".into(), s.to_value()));
        }
        if let Some(f) = &self.fleet {
            entries.push(("fleet".into(), f.to_value()));
        }
        serde::Value::Map(entries)
    }
}

impl Deserialize for CellConfig {
    fn from_value(v: &serde::Value) -> Result<Self, serde::DeError> {
        let need = |f: &str| {
            v.get(f)
                .ok_or_else(|| serde::DeError::custom(format!("missing field `{f}` in CellConfig")))
        };
        Ok(CellConfig {
            scenario: Deserialize::from_value(need("scenario")?)?,
            stripe_count: Deserialize::from_value(need("stripe_count")?)?,
            chooser: Deserialize::from_value(need("chooser")?)?,
            nodes: Deserialize::from_value(need("nodes")?)?,
            ppn: Deserialize::from_value(need("ppn")?)?,
            total_bytes: Deserialize::from_value(need("total_bytes")?)?,
            transfer_size: Deserialize::from_value(need("transfer_size")?)?,
            layout: Deserialize::from_value(need("layout")?)?,
            mode: Deserialize::from_value(need("mode")?)?,
            apps: Deserialize::from_value(need("apps")?)?,
            faults: Deserialize::from_value(need("faults")?)?,
            policy: Deserialize::from_value(need("policy")?)?,
            sched: match v.get("sched") {
                Some(s) => Deserialize::from_value(s)?,
                None => None,
            },
            fleet: match v.get("fleet") {
                Some(f) => Some(Deserialize::from_value(f)?),
                None => None,
            },
        })
    }
}

/// An online-scheduling workload riding on a campaign cell: the cell's
/// `IorConfig` becomes the per-arrival template, and the scheduler
/// serves a Poisson stream of them under one placement policy.
#[derive(Debug, Clone, PartialEq)]
pub struct SchedWorkload {
    /// Placement policy the scheduler uses.
    pub policy: SchedPolicyKind,
    /// Poisson arrival rate, applications per second.
    pub rate_per_s: f64,
    /// Number of arrivals in the stream.
    pub count: usize,
    /// Storage target demand per application.
    pub stripe: u32,
    /// Optional hedging configuration: when set, every measurement run
    /// chunks its writes, detects straggling targets, and redirects
    /// around them (see [`ior::HedgeConfig`]). Kept out of the
    /// serialized form when absent so pre-hedging scheduled cells keep
    /// their cache identities.
    pub hedge: Option<HedgeConfig>,
    /// How the scheduler prices admissions: the frozen-oracle reference
    /// (default) or the continuous online engine that makes
    /// million-arrival cells tractable. Kept out of the serialized form
    /// when it is the default so pre-engine scheduled cells keep their
    /// cache identities; online cells key differently — the two modes
    /// produce different (if statistically close) results.
    pub mode: AdmissionMode,
}

// Hand-written for the same reason as [`CellConfig`]: `hedge` is
// omitted when absent and `mode` when default, both tolerated when
// missing.
impl Serialize for SchedWorkload {
    fn to_value(&self) -> serde::Value {
        let mut entries: Vec<(String, serde::Value)> = vec![
            ("policy".into(), self.policy.to_value()),
            ("rate_per_s".into(), self.rate_per_s.to_value()),
            ("count".into(), self.count.to_value()),
            ("stripe".into(), self.stripe.to_value()),
        ];
        if let Some(h) = &self.hedge {
            entries.push(("hedge".into(), h.to_value()));
        }
        if self.mode != AdmissionMode::default() {
            entries.push(("mode".into(), self.mode.to_value()));
        }
        serde::Value::Map(entries)
    }
}

impl Deserialize for SchedWorkload {
    fn from_value(v: &serde::Value) -> Result<Self, serde::DeError> {
        let need = |f: &str| {
            v.get(f).ok_or_else(|| {
                serde::DeError::custom(format!("missing field `{f}` in SchedWorkload"))
            })
        };
        Ok(SchedWorkload {
            policy: Deserialize::from_value(need("policy")?)?,
            rate_per_s: Deserialize::from_value(need("rate_per_s")?)?,
            count: Deserialize::from_value(need("count")?)?,
            stripe: Deserialize::from_value(need("stripe")?)?,
            hedge: match v.get("hedge") {
                Some(h) => Deserialize::from_value(h)?,
                None => None,
            },
            mode: match v.get("mode") {
                Some(m) => Deserialize::from_value(m)?,
                None => AdmissionMode::default(),
            },
        })
    }
}

/// Which placement policy a scheduled cell uses (the serializable side
/// of [`sched::PlacementPolicy`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum SchedPolicyKind {
    /// Defer to the deployment's chooser (the BeeGFS baseline).
    Random,
    /// Cycle over storage servers.
    RoundRobinServer,
    /// Greedy on outstanding allocated bytes per server.
    LeastLoadedServer,
    /// Greedy on live per-target busy fractions.
    UtilizationFeedback,
    /// Utilization feedback plus quarantine of targets the hedging
    /// detector has flagged as stragglers.
    StragglerAware,
    /// Utilization-feedback placement plus IOPathTune-style mid-flight
    /// restriping from observed per-application throughput
    /// (online-mode only).
    AdaptiveStriping,
}

impl SchedPolicyKind {
    /// The load-placement policies of the `fig_sched` comparison, in
    /// presentation order ([`SchedPolicyKind::StragglerAware`] belongs
    /// to the straggler campaign, not this sweep).
    pub const ALL: [SchedPolicyKind; 4] = [
        SchedPolicyKind::Random,
        SchedPolicyKind::RoundRobinServer,
        SchedPolicyKind::LeastLoadedServer,
        SchedPolicyKind::UtilizationFeedback,
    ];

    /// Stable label (used in cell labels and tables).
    pub fn label(self) -> &'static str {
        match self {
            SchedPolicyKind::Random => "Random",
            SchedPolicyKind::RoundRobinServer => "RoundRobinServer",
            SchedPolicyKind::LeastLoadedServer => "LeastLoadedServer",
            SchedPolicyKind::UtilizationFeedback => "UtilizationFeedback",
            SchedPolicyKind::StragglerAware => "StragglerAware",
            SchedPolicyKind::AdaptiveStriping => "AdaptiveStriping",
        }
    }

    /// Instantiate the policy.
    pub fn build(self) -> Box<dyn sched::PlacementPolicy> {
        match self {
            SchedPolicyKind::Random => Box::new(sched::Random),
            SchedPolicyKind::RoundRobinServer => Box::<sched::RoundRobinServer>::default(),
            SchedPolicyKind::LeastLoadedServer => Box::new(sched::LeastLoadedServer),
            SchedPolicyKind::UtilizationFeedback => Box::new(sched::UtilizationFeedback),
            SchedPolicyKind::StragglerAware => Box::new(sched::StragglerAware),
            SchedPolicyKind::AdaptiveStriping => Box::<sched::AdaptiveStriping>::default(),
        }
    }
}

impl CellConfig {
    /// A single-application cell from deployment knobs plus an
    /// [`IorConfig`] (whose node/ppn/size fields are copied over).
    pub fn new(
        scenario: Scenario,
        stripe_count: u32,
        chooser: ChooserKind,
        ior: IorConfig,
    ) -> Self {
        CellConfig {
            scenario,
            stripe_count,
            chooser,
            nodes: ior.nodes,
            ppn: ior.ppn,
            total_bytes: ior.total_bytes,
            transfer_size: ior.transfer_size,
            layout: ior.layout,
            mode: ior.mode,
            apps: 1,
            faults: None,
            policy: None,
            sched: None,
            fleet: None,
        }
    }

    /// Derive a copy running `apps` identical concurrent applications.
    pub fn with_apps(mut self, apps: u32) -> Self {
        self.apps = apps;
        self
    }

    /// Derive a copy with a mid-run fault timeline.
    pub fn with_faults(mut self, plan: FaultPlan) -> Self {
        self.faults = Some(plan);
        self
    }

    /// Derive a copy with a client retry policy.
    pub fn with_policy(mut self, policy: RetryPolicy) -> Self {
        self.policy = Some(policy);
        self
    }

    /// Derive a copy served as an online-scheduling workload.
    pub fn with_sched(mut self, workload: SchedWorkload) -> Self {
        self.sched = Some(workload);
        self
    }

    /// Derive a copy deployed on an explicit [`cluster::FleetSpec`]
    /// fleet (the `scenario` field is then only a nominal tag).
    pub fn with_fleet(mut self, fleet: cluster::FleetSpec) -> Self {
        self.fleet = Some(fleet);
        self
    }

    /// The per-application benchmark configuration.
    pub fn ior_config(&self) -> IorConfig {
        IorConfig {
            nodes: self.nodes,
            ppn: self.ppn,
            total_bytes: self.total_bytes,
            transfer_size: self.transfer_size,
            layout: self.layout,
            mode: self.mode,
        }
    }
}

/// One cell of a campaign: a label, a workload, a repetition count.
///
/// The label doubles as the RNG stream selector (`stream(label, rep)`),
/// so a figure ported onto the engine reproduces its legacy results
/// bit-for-bit by keeping its legacy label format.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CellSpec {
    /// Unique-within-the-campaign label; also the RNG stream name.
    pub label: String,
    /// The workload.
    pub config: CellConfig,
    /// Repetitions requested.
    pub reps: usize,
}

/// A declarative sweep: a named, seeded grid of cells.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Campaign {
    /// Campaign name; derives the RNG factory (`derive(name, 0)`), so it
    /// must match the legacy experiment name for ported figures.
    pub name: String,
    /// Master seed.
    pub seed: u64,
    /// The cells, in presentation order.
    pub cells: Vec<CellSpec>,
}

impl Campaign {
    /// An empty campaign.
    pub fn new(name: impl Into<String>, seed: u64) -> Self {
        Campaign {
            name: name.into(),
            seed,
            cells: Vec::new(),
        }
    }

    /// Append one cell.
    pub fn cell(mut self, label: impl Into<String>, config: CellConfig, reps: usize) -> Self {
        self.cells.push(CellSpec {
            label: label.into(),
            config,
            reps,
        });
        self
    }

    /// Total repetitions over all cells.
    pub fn total_reps(&self) -> usize {
        self.cells.iter().map(|c| c.reps).sum()
    }
}

/// One application's measurements within a repetition.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AppRecord {
    /// Write bandwidth, MiB/s.
    pub mib_s: f64,
    /// `(min,max)` target-allocation label of the application's file(s).
    pub allocation: String,
    /// Allocation balance ratio min/max.
    pub balance: f64,
}

/// One repetition's measurements.
#[derive(Debug, Clone, PartialEq)]
pub struct RepRecord {
    /// Per-application records, in submission order.
    pub apps: Vec<AppRecord>,
    /// Equation-1 aggregate bandwidth over all applications, MiB/s.
    pub aggregate_mib_s: f64,
    /// Simulated wall time of the repetition, seconds.
    pub sim_secs: f64,
    /// Per-application slowdowns for scheduled cells (`None` for plain
    /// concurrent-run cells; absent in records stored before the
    /// scheduler existed).
    pub slowdowns: Option<Vec<f64>>,
    /// Per-application queueing waits, seconds, for scheduled cells
    /// (`None` for plain cells; absent in records stored before waits
    /// were recorded).
    pub waits: Option<Vec<f64>>,
}

// Hand-written for the same reason as [`CellConfig`]: `slowdowns` and
// `waits` are omitted when absent and tolerated when missing, keeping
// stored records from older builds loadable and plain records
// byte-identical.
impl Serialize for RepRecord {
    fn to_value(&self) -> serde::Value {
        let mut entries: Vec<(String, serde::Value)> = vec![
            ("apps".into(), self.apps.to_value()),
            ("aggregate_mib_s".into(), self.aggregate_mib_s.to_value()),
            ("sim_secs".into(), self.sim_secs.to_value()),
        ];
        if let Some(s) = &self.slowdowns {
            entries.push(("slowdowns".into(), s.to_value()));
        }
        if let Some(w) = &self.waits {
            entries.push(("waits".into(), w.to_value()));
        }
        serde::Value::Map(entries)
    }
}

impl Deserialize for RepRecord {
    fn from_value(v: &serde::Value) -> Result<Self, serde::DeError> {
        let need = |f: &str| {
            v.get(f)
                .ok_or_else(|| serde::DeError::custom(format!("missing field `{f}` in RepRecord")))
        };
        Ok(RepRecord {
            apps: Deserialize::from_value(need("apps")?)?,
            aggregate_mib_s: Deserialize::from_value(need("aggregate_mib_s")?)?,
            sim_secs: Deserialize::from_value(need("sim_secs")?)?,
            slowdowns: match v.get("slowdowns") {
                Some(s) => Deserialize::from_value(s)?,
                None => None,
            },
            waits: match v.get("waits") {
                Some(w) => Deserialize::from_value(w)?,
                None => None,
            },
        })
    }
}

/// One cell's results as returned to the caller (trimmed to the
/// requested rep count even when the store holds more).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CellResult {
    /// The cell's label.
    pub label: String,
    /// The workload that produced the reps.
    pub config: CellConfig,
    /// Exactly `spec.reps` repetitions, in rep order.
    pub reps: Vec<RepRecord>,
}

impl CellResult {
    /// First-application bandwidths per rep — the series the paper's
    /// single-application figures plot.
    pub fn bandwidths(&self) -> Vec<f64> {
        self.reps.iter().map(|r| r.apps[0].mib_s).collect()
    }

    /// Aggregate bandwidths per rep (interesting for concurrent cells).
    pub fn aggregate_bandwidths(&self) -> Vec<f64> {
        self.reps.iter().map(|r| r.aggregate_mib_s).collect()
    }
}

/// Per-campaign observability counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct CampaignStats {
    /// Cells in the campaign.
    pub cells_total: usize,
    /// Cells served entirely from the store.
    pub cells_cached: usize,
    /// Cells that reused a stored prefix and computed only the tail.
    pub cells_partial: usize,
    /// Cells computed from scratch.
    pub cells_computed: usize,
    /// Cells with at least one failed repetition.
    pub cells_failed: usize,
    /// Repetitions requested over all cells.
    pub reps_total: usize,
    /// Repetitions served from the store.
    pub reps_cached: usize,
    /// Repetitions actually simulated (including any that failed).
    pub reps_computed: usize,
    /// Simulated seconds across the computed repetitions.
    pub sim_secs: f64,
    /// Wall-clock seconds the campaign took.
    pub wall_secs: f64,
    /// Simulation events processed across the computed repetitions
    /// (flow starts, completions, scheduled rate changes). Zero for a
    /// fully warm campaign — the cache-correctness proof.
    pub sim_events: u64,
}

impl CampaignStats {
    /// Fraction of requested repetitions served from the store.
    pub fn cache_hit_rate(&self) -> f64 {
        if self.reps_total == 0 {
            0.0
        } else {
            self.reps_cached as f64 / self.reps_total as f64
        }
    }

    /// Simulated seconds per wall second — the engine's speed metric.
    pub fn sim_rate(&self) -> f64 {
        if self.wall_secs > 0.0 {
            self.sim_secs / self.wall_secs
        } else {
            0.0
        }
    }

    /// One-line human summary, e.g. for `repro`'s progress output.
    pub fn summary(&self) -> String {
        format!(
            "{} cells ({} cached, {} partial, {} computed, {} failed); \
             {}/{} reps from cache ({:.0}% hit rate); \
             {:.1} sim-s / {} sim events in {:.2} wall-s ({:.0}x real time)",
            self.cells_total,
            self.cells_cached,
            self.cells_partial,
            self.cells_computed,
            self.cells_failed,
            self.reps_cached,
            self.reps_total,
            100.0 * self.cache_hit_rate(),
            self.sim_secs,
            self.sim_events,
            self.wall_secs,
            self.sim_rate(),
        )
    }
}

/// Tail-latency digest of a scheduled cell's slowdown distribution,
/// pooled over every repetition's per-application slowdowns.
///
/// The paper's Lesson 5 — summarize carefully and look at all the
/// points — applied to scheduling: a mean slowdown hides the straggler
/// tail, so the campaign surfaces the quantiles and a modality check
/// alongside it.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TailMetrics {
    /// Median slowdown.
    pub p50: f64,
    /// 95th-percentile slowdown.
    pub p95: f64,
    /// 99th-percentile slowdown — the headline tail-latency number.
    pub p99: f64,
    /// Interquartile range of the slowdowns.
    pub iqr: f64,
    /// Sarle's bimodality coefficient of the slowdowns.
    pub bimodality: f64,
    /// Whether the distribution looks multi-modal (coefficient above
    /// the ~0.555 uniform threshold) — the signature of a subpopulation
    /// of straggler-struck applications.
    pub is_multimodal: bool,
}

impl TailMetrics {
    /// Digest a pooled slowdown sample; `None` when empty.
    pub fn from_slowdowns(slowdowns: &[f64]) -> Option<Self> {
        Self::from_sample(slowdowns)
    }

    /// Digest any pooled sample (slowdowns, queue waits in seconds, ...);
    /// `None` when empty.
    pub fn from_sample(sample: &[f64]) -> Option<Self> {
        if sample.is_empty() {
            return None;
        }
        let s = iostats::Summary::from_sample(sample);
        Some(TailMetrics {
            p50: s.p50(),
            p95: s.p95(),
            p99: s.p99(),
            iqr: s.iqr(),
            bimodality: s.bimodality_coefficient(),
            is_multimodal: s.is_multimodal(),
        })
    }
}

/// Per-cell execution metrics for one engine run (not part of the cell's
/// cached results — these describe *this* execution, not the workload).
#[derive(Debug, Clone, PartialEq)]
pub struct CellMetrics {
    /// The cell's label.
    pub label: String,
    /// The cell's content-address in the store.
    pub key: String,
    /// Repetitions the campaign asked for.
    pub reps_requested: usize,
    /// Repetitions served from the store.
    pub reps_cached: usize,
    /// Repetitions simulated this run (including any that failed).
    pub reps_computed: usize,
    /// Wall-clock seconds spent simulating this cell's reps (summed over
    /// reps, so parallel execution can exceed the campaign wall time).
    pub compute_secs: f64,
    /// Simulated seconds across this cell's computed reps.
    pub sim_secs: f64,
    /// Simulation events processed across this cell's computed reps.
    pub sim_events: u64,
    /// Whether any repetition failed.
    pub failed: bool,
    /// Slowdown tail digest for scheduled cells (`None` for plain
    /// cells, which have no slowdown series).
    pub tail: Option<TailMetrics>,
    /// Queue-wait tail digest, seconds, for scheduled cells (`None` for
    /// plain cells and for cells whose stored reps predate wait
    /// recording). A fat wait tail with a thin slowdown tail means the
    /// admission gate — not placement — is the bottleneck.
    pub wait_tail: Option<TailMetrics>,
}

// Hand-written for the same reason as [`CellConfig`]: `tail` and
// `wait_tail` are omitted when absent, so metrics documents of plain
// campaigns stay byte-identical to what older builds wrote.
impl Serialize for CellMetrics {
    fn to_value(&self) -> serde::Value {
        let mut entries: Vec<(String, serde::Value)> = vec![
            ("label".into(), self.label.to_value()),
            ("key".into(), self.key.to_value()),
            ("reps_requested".into(), self.reps_requested.to_value()),
            ("reps_cached".into(), self.reps_cached.to_value()),
            ("reps_computed".into(), self.reps_computed.to_value()),
            ("compute_secs".into(), self.compute_secs.to_value()),
            ("sim_secs".into(), self.sim_secs.to_value()),
            ("sim_events".into(), self.sim_events.to_value()),
            ("failed".into(), self.failed.to_value()),
        ];
        if let Some(t) = &self.tail {
            entries.push(("tail".into(), t.to_value()));
        }
        if let Some(w) = &self.wait_tail {
            entries.push(("wait_tail".into(), w.to_value()));
        }
        serde::Value::Map(entries)
    }
}

impl Deserialize for CellMetrics {
    fn from_value(v: &serde::Value) -> Result<Self, serde::DeError> {
        let need = |f: &str| {
            v.get(f).ok_or_else(|| {
                serde::DeError::custom(format!("missing field `{f}` in CellMetrics"))
            })
        };
        Ok(CellMetrics {
            label: Deserialize::from_value(need("label")?)?,
            key: Deserialize::from_value(need("key")?)?,
            reps_requested: Deserialize::from_value(need("reps_requested")?)?,
            reps_cached: Deserialize::from_value(need("reps_cached")?)?,
            reps_computed: Deserialize::from_value(need("reps_computed")?)?,
            compute_secs: Deserialize::from_value(need("compute_secs")?)?,
            sim_secs: Deserialize::from_value(need("sim_secs")?)?,
            sim_events: Deserialize::from_value(need("sim_events")?)?,
            failed: Deserialize::from_value(need("failed")?)?,
            tail: match v.get("tail") {
                Some(t) => Deserialize::from_value(t)?,
                None => None,
            },
            wait_tail: match v.get("wait_tail") {
                Some(w) => Deserialize::from_value(w)?,
                None => None,
            },
        })
    }
}

impl CellMetrics {
    /// Computed repetitions per wall-clock second of simulation work.
    pub fn reps_per_sec(&self) -> f64 {
        if self.compute_secs > 0.0 {
            self.reps_computed as f64 / self.compute_secs
        } else {
            0.0
        }
    }
}

/// The metrics document the engine serializes next to the cache after
/// every run: campaign identity, run-level stats, per-cell breakdown.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CampaignMetrics {
    /// Campaign name (also the metrics file name).
    pub campaign: String,
    /// Campaign master seed.
    pub seed: u64,
    /// [`MODEL_VERSION`] the run executed under.
    pub model_version: u32,
    /// Run-level counters.
    pub stats: CampaignStats,
    /// Per-cell breakdown, in campaign order.
    pub cells: Vec<CellMetrics>,
}

/// A finished campaign: per-cell results plus the run's stats.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CampaignOutcome {
    /// The campaign's name.
    pub name: String,
    /// One result per cell, in campaign order.
    pub cells: Vec<CellResult>,
    /// Observability counters for this run.
    pub stats: CampaignStats,
    /// Per-cell execution metrics for this run, in campaign order.
    pub cell_metrics: Vec<CellMetrics>,
}

impl CampaignOutcome {
    /// Look up a cell by label.
    pub fn cell(&self, label: &str) -> Option<&CellResult> {
        self.cells.iter().find(|c| c.label == label)
    }
}

/// Why one repetition of one cell failed: either the plain concurrent
/// run engine or, for scheduled cells, the online scheduler.
#[derive(Debug)]
pub enum RepError {
    /// A plain concurrent run failed.
    Run(RunError),
    /// A scheduled (arrival-stream) repetition failed.
    Sched(SchedError),
}

impl fmt::Display for RepError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RepError::Run(e) => e.fmt(f),
            RepError::Sched(e) => e.fmt(f),
        }
    }
}

impl std::error::Error for RepError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            RepError::Run(e) => Some(e),
            RepError::Sched(e) => Some(e),
        }
    }
}

impl From<RunError> for RepError {
    fn from(e: RunError) -> Self {
        RepError::Run(e)
    }
}

impl From<SchedError> for RepError {
    fn from(e: SchedError) -> Self {
        RepError::Sched(e)
    }
}

/// A campaign could not complete.
#[derive(Debug)]
pub enum CampaignError {
    /// One or more repetitions failed. Successful cells (and successful
    /// rep prefixes of the failing cells) were still persisted, so a
    /// corrected re-run completes only the missing work.
    Cells {
        /// How many cells had at least one failed repetition.
        failed: usize,
        /// Label of the first failing cell (campaign order).
        label: String,
        /// The first failing repetition index within that cell.
        rep: usize,
        /// The underlying repetition error.
        source: RepError,
    },
    /// The result store could not be read from or written to.
    Store(std::io::Error),
}

impl fmt::Display for CampaignError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CampaignError::Cells {
                failed,
                label,
                rep,
                source,
            } => write!(
                f,
                "{failed} cell(s) failed; first failure: cell `{label}` rep {rep}: {source}"
            ),
            CampaignError::Store(e) => write!(f, "result store error: {e}"),
        }
    }
}

impl std::error::Error for CampaignError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            CampaignError::Cells { source, .. } => Some(source),
            CampaignError::Store(e) => Some(e),
        }
    }
}

impl From<std::io::Error> for CampaignError {
    fn from(e: std::io::Error) -> Self {
        CampaignError::Store(e)
    }
}

/// The campaign executor.
///
/// Holds an optional [`ResultStore`] (omit it for purely in-memory
/// execution, e.g. in tests), a verbosity flag, and a counter of
/// repetitions actually simulated — the hook the cache-correctness
/// tests use to prove a warm re-run does zero simulation work.
#[derive(Debug)]
pub struct CampaignEngine {
    store: Option<ResultStore>,
    verbose: bool,
    executed_reps: AtomicUsize,
}

impl CampaignEngine {
    /// An engine with no persistence: every rep is simulated every time.
    pub fn in_memory() -> Self {
        CampaignEngine {
            store: None,
            verbose: false,
            executed_reps: AtomicUsize::new(0),
        }
    }

    /// An engine backed by an on-disk store rooted at `root`.
    pub fn with_store(root: impl Into<std::path::PathBuf>) -> std::io::Result<Self> {
        Ok(CampaignEngine {
            store: Some(ResultStore::open(root)?),
            verbose: false,
            executed_reps: AtomicUsize::new(0),
        })
    }

    /// Enable per-cell progress lines on stderr.
    pub fn verbose(mut self, on: bool) -> Self {
        self.verbose = on;
        self
    }

    /// The store's root directory, if the engine persists results.
    pub fn store_root(&self) -> Option<&Path> {
        self.store.as_ref().map(|s| s.root())
    }

    /// Repetitions simulated by this engine since construction. Cached
    /// reps do not count — a fully warm campaign leaves this unchanged.
    pub fn executed_reps(&self) -> usize {
        self.executed_reps.load(Ordering::Relaxed)
    }

    /// Execute a campaign: load cached reps, simulate the missing
    /// (cell, rep) pairs in parallel, persist the updated cells, and
    /// return per-cell results plus stats.
    pub fn run(&self, campaign: &Campaign) -> Result<CampaignOutcome, CampaignError> {
        self.run_with_metrics(campaign).map(|(outcome, _)| outcome)
    }

    /// [`CampaignEngine::run`], additionally returning the merged
    /// instrumentation registry of every repetition simulated this run.
    ///
    /// Each worker rep records into its own private
    /// [`obs::metrics::MetricsRegistry`]; the engine merges them in cell
    /// order after the parallel phase. Counter addition and histogram
    /// bucket merges are commutative and associative, so the merged
    /// registry — and its byte-stable JSON snapshot — is independent of
    /// the rayon schedule. Cached reps contribute nothing (they did no
    /// simulation work), so a fully warm campaign returns a registry
    /// holding only the `campaign.*` counters.
    pub fn run_with_metrics(
        &self,
        campaign: &Campaign,
    ) -> Result<(CampaignOutcome, obs::metrics::MetricsRegistry), CampaignError> {
        let start = Instant::now();
        let factory = RngFactory::new(campaign.seed).derive(&campaign.name, 0);

        // Phase 1: consult the store.
        let cached: Vec<Vec<RepRecord>> = campaign
            .cells
            .iter()
            .map(|spec| match &self.store {
                Some(store) => store
                    .load(&cell_key(&campaign.name, campaign.seed, spec))
                    .map(|r| r.reps)
                    .unwrap_or_default(),
                None => Vec::new(),
            })
            .collect();

        // Phase 2: flatten the missing (cell, rep) pairs into one work
        // list so rayon load-balances across cells *and* reps.
        let work: Vec<(usize, usize)> = campaign
            .cells
            .iter()
            .enumerate()
            .flat_map(|(ci, spec)| (cached[ci].len()..spec.reps).map(move |rep| (ci, rep)))
            .collect();

        // Phase 3: simulate. Order-preserving parallel map; each rep
        // draws from its own stream, so scheduling cannot leak in. The
        // per-rep wall time rides along for the metrics document.
        type RepOutcome = (
            usize,
            usize,
            f64,
            Result<(RepRecord, u64, obs::metrics::MetricsRegistry), RepError>,
        );
        let computed: Vec<RepOutcome> = work
            .into_par_iter()
            .map(|(ci, rep)| {
                let spec = &campaign.cells[ci];
                self.executed_reps.fetch_add(1, Ordering::Relaxed);
                let rep_start = Instant::now();
                let result = execute_rep(&spec.config, &factory, &spec.label, rep);
                (ci, rep, rep_start.elapsed().as_secs_f64(), result)
            })
            .collect();

        // Phase 4: merge, persist, count.
        let mut stats = CampaignStats {
            cells_total: campaign.cells.len(),
            reps_total: campaign.total_reps(),
            ..CampaignStats::default()
        };
        let mut cells = Vec::with_capacity(campaign.cells.len());
        let mut cell_metrics = Vec::with_capacity(campaign.cells.len());
        let mut run_metrics = obs::metrics::MetricsRegistry::new();
        let mut first_failure: Option<(String, usize, RepError)> = None;
        let mut computed = computed.into_iter().peekable();
        for (ci, spec) in campaign.cells.iter().enumerate() {
            let prior = cached[ci].len().min(spec.reps);
            let mut reps = cached[ci].clone();
            let mut failed_at: Option<(usize, RepError)> = None;
            let mut computed_here = 0usize;
            let mut compute_secs = 0.0f64;
            let mut cell_sim_secs = 0.0f64;
            let mut cell_sim_events = 0u64;
            while let Some((c, _, _, _)) = computed.peek() {
                if *c != ci {
                    break;
                }
                let (_, rep, wall, res) = computed.next().expect("peeked");
                computed_here += 1;
                compute_secs += wall;
                match res {
                    // Reps after a failed one are discarded: stored reps
                    // must stay a contiguous prefix of the stream.
                    Ok((r, events, reg)) if failed_at.is_none() => {
                        stats.sim_secs += r.sim_secs;
                        cell_sim_secs += r.sim_secs;
                        cell_sim_events += events;
                        run_metrics.merge(&reg);
                        reps.push(r);
                    }
                    // Discarded reps still did simulation work; the
                    // event counter (and the merged registry) reflect it.
                    Ok((_, events, reg)) => {
                        cell_sim_events += events;
                        run_metrics.merge(&reg);
                    }
                    Err(e) => {
                        if failed_at.is_none() {
                            failed_at = Some((rep, e));
                        }
                    }
                }
            }
            stats.reps_cached += prior;
            stats.reps_computed += computed_here;
            stats.sim_events += cell_sim_events;
            match (prior, computed_here, &failed_at) {
                (_, _, Some(_)) => stats.cells_failed += 1,
                (_, 0, None) => stats.cells_cached += 1,
                (0, _, None) => stats.cells_computed += 1,
                (_, _, None) => stats.cells_partial += 1,
            }
            let key = cell_key(&campaign.name, campaign.seed, spec);
            // Tail digest over the reps this run returns for the cell
            // (the trimmed prefix), pooling every app's slowdown.
            let slowdowns: Vec<f64> = reps[..reps.len().min(spec.reps)]
                .iter()
                .filter_map(|r| r.slowdowns.as_ref())
                .flatten()
                .copied()
                .collect();
            let waits: Vec<f64> = reps[..reps.len().min(spec.reps)]
                .iter()
                .filter_map(|r| r.waits.as_ref())
                .flatten()
                .copied()
                .collect();
            cell_metrics.push(CellMetrics {
                label: spec.label.clone(),
                key: key.clone(),
                reps_requested: spec.reps,
                reps_cached: prior,
                reps_computed: computed_here,
                compute_secs,
                sim_secs: cell_sim_secs,
                sim_events: cell_sim_events,
                failed: failed_at.is_some(),
                tail: TailMetrics::from_slowdowns(&slowdowns),
                wait_tail: TailMetrics::from_sample(&waits),
            });
            // Persist any new prefix-extending work, even for a cell
            // that failed later: resume picks up from the last good rep.
            if computed_here > 0 && reps.len() > cached[ci].len() {
                if let Some(store) = &self.store {
                    store.save(&CellRecord {
                        key,
                        model_version: MODEL_VERSION,
                        campaign: campaign.name.clone(),
                        seed: campaign.seed,
                        label: spec.label.clone(),
                        config: spec.config.clone(),
                        reps: reps.clone(),
                    })?;
                }
            }
            if self.verbose {
                let status = match &failed_at {
                    Some((rep, e)) => format!("FAILED at rep {rep}: {e}"),
                    None => format!("{prior} cached + {computed_here} computed"),
                };
                eprintln!(
                    "[{}] {} ({}/{} reps): {status}",
                    campaign.name,
                    spec.label,
                    reps.len().min(spec.reps),
                    spec.reps
                );
            }
            if let Some((rep, e)) = failed_at {
                if first_failure.is_none() {
                    first_failure = Some((spec.label.clone(), rep, e));
                }
            }
            reps.truncate(spec.reps);
            cells.push(CellResult {
                label: spec.label.clone(),
                config: spec.config.clone(),
                reps,
            });
        }
        stats.wall_secs = start.elapsed().as_secs_f64();
        // Engine-level counters ride in the same registry so the
        // snapshot is self-describing (wall time stays out: it would
        // break byte-stability across identical runs).
        run_metrics.add("campaign.reps_cached", stats.reps_cached as u64);
        run_metrics.add("campaign.reps_computed", stats.reps_computed as u64);
        if self.verbose {
            eprintln!("[{}] {}", campaign.name, stats.summary());
        }
        // Metrics are written even for a failing campaign — a failed run
        // is exactly when the breakdown is most useful.
        if let Some(store) = &self.store {
            store.save_metrics(&CampaignMetrics {
                campaign: campaign.name.clone(),
                seed: campaign.seed,
                model_version: MODEL_VERSION,
                stats,
                cells: cell_metrics.clone(),
            })?;
            store.save_metrics_snapshot(&campaign.name, &run_metrics)?;
        }
        if let Some((label, rep, source)) = first_failure {
            return Err(CampaignError::Cells {
                failed: stats.cells_failed,
                label,
                rep,
                source,
            });
        }
        Ok((
            CampaignOutcome {
                name: campaign.name.clone(),
                cells,
                stats,
                cell_metrics,
            },
            run_metrics,
        ))
    }

    /// Where this engine persists a campaign's run metrics, if it has a
    /// store at all.
    pub fn metrics_path(&self, campaign: &str) -> Option<std::path::PathBuf> {
        self.store.as_ref().map(|s| s.metrics_path(campaign))
    }

    /// Where this engine persists a campaign's merged registry snapshot,
    /// if it has a store at all.
    pub fn metrics_snapshot_path(&self, campaign: &str) -> Option<std::path::PathBuf> {
        self.store
            .as_ref()
            .map(|s| s.metrics_snapshot_path(campaign))
    }
}

/// Simulate one repetition of one cell, returning the record plus the
/// number of simulation events the run processed.
///
/// Plain cells draw from `factory.stream(label, rep)` exactly as the
/// legacy figure loops did inside [`crate::context::repeat`], so a
/// ported figure's RNG consumption — and therefore its results — is
/// unchanged. Scheduled cells instead derive a per-rep factory
/// (`factory.derive(label, rep)`) because one repetition consumes many
/// named streams (arrivals, one per placement, run, and solo baseline).
/// Deploy one repetition's file system: the cell's explicit fleet when
/// present, the scenario preset otherwise. In-repo cells carry vetted
/// specs, so an invalid fleet is a bug and panics like `deploy`'s own
/// asserts would.
fn deploy_cell(config: &CellConfig) -> beegfs_core::BeeGfs {
    match &config.fleet {
        Some(spec) => deploy_on(
            spec.build().expect("cell fleet spec is valid"),
            config.stripe_count,
            config.chooser,
        ),
        None => deploy(config.scenario, config.stripe_count, config.chooser),
    }
}

fn execute_rep(
    config: &CellConfig,
    factory: &RngFactory,
    label: &str,
    rep: usize,
) -> Result<(RepRecord, u64, obs::metrics::MetricsRegistry), RepError> {
    if let Some(workload) = &config.sched {
        return execute_sched_rep(config, workload, factory, label, rep);
    }
    // One arena per rayon worker thread: reps on the same thread reuse
    // the simulation buffers, and arenas carry no state between reps,
    // so results stay independent of the rayon work distribution.
    thread_local! {
        static REP_ARENA: std::cell::RefCell<SimArena> =
            std::cell::RefCell::new(SimArena::new());
    }
    let mut rng = factory.stream(label, rep as u64);
    let mut fs = deploy_cell(config);
    let ior = config.ior_config();
    // Each rep records into its own registry; the engine merges them
    // after the parallel phase, in cell order.
    let mut metrics = obs::metrics::MetricsRegistry::new();
    let (out, _telemetry) = REP_ARENA
        .with(|arena| {
            let mut arena = arena.borrow_mut();
            let mut run = Run::new(&mut fs).arena(&mut arena).metrics(&mut metrics);
            for _ in 0..config.apps {
                run = run.app(AppSpec::new(ior));
            }
            if let Some(plan) = &config.faults {
                run = run.faults(plan.clone());
            }
            if let Some(policy) = config.policy {
                run = run.policy(policy);
            }
            run.execute(&mut rng)
        })
        .map_err(RepError::Run)?;
    let sim_secs = out.apps.iter().map(|a| a.duration_s).fold(0.0, f64::max);
    let record = RepRecord {
        apps: out
            .apps
            .iter()
            .map(|a| AppRecord {
                mib_s: a.bandwidth.mib_per_sec(),
                allocation: a.allocation.label(),
                balance: a.allocation.balance(),
            })
            .collect(),
        aggregate_mib_s: out.aggregate.mib_per_sec(),
        sim_secs,
        slowdowns: None,
        waits: None,
    };
    Ok((record, out.sim_events, metrics))
}

/// One repetition of a scheduled cell: generate the Poisson arrival
/// stream, serve it through the online scheduler, and record each
/// application's bandwidth, final allocation, and slowdown.
///
/// Arrival times draw from a *label-independent* stream
/// (`derive("sched-arrivals", rep)`), so every policy cell of a
/// campaign faces the same arrival instants at the same rep — the
/// common-random-numbers pairing that makes policy comparisons fair.
/// Everything the scheduler itself consumes derives from the cell's own
/// label as usual.
fn execute_sched_rep(
    config: &CellConfig,
    workload: &SchedWorkload,
    factory: &RngFactory,
    label: &str,
    rep: usize,
) -> Result<(RepRecord, u64, obs::metrics::MetricsRegistry), RepError> {
    let rep_factory = factory.derive(label, rep as u64);
    let mut fs = deploy_cell(config);
    let platform = fs.platform().clone();
    let stream = ArrivalStream::poisson(
        workload.rate_per_s,
        workload.count,
        config.ior_config(),
        workload.stripe,
        &mut factory
            .derive("sched-arrivals", rep as u64)
            .stream("arrivals", 0),
    );
    let mut metrics = obs::metrics::MetricsRegistry::new();
    let mut sched = Scheduler::new(&mut fs, workload.policy.build())
        .mode(workload.mode)
        .metrics(&mut metrics);
    if let Some(h) = workload.hedge {
        sched = sched.hedge(h);
    }
    if let Some(plan) = &config.faults {
        sched = sched.faults(plan.clone());
    }
    if let Some(policy) = config.policy {
        sched = sched.retry(policy);
    }
    let out = sched
        .serve(&stream, &rep_factory)
        .map_err(RepError::Sched)?;
    let record = RepRecord {
        apps: out
            .apps
            .iter()
            .map(|a| {
                let alloc = Allocation::classify(&platform, &a.targets);
                AppRecord {
                    mib_s: a.bandwidth.mib_per_sec(),
                    allocation: alloc.label(),
                    balance: alloc.balance(),
                }
            })
            .collect(),
        aggregate_mib_s: out.aggregate.mib_per_sec(),
        sim_secs: out.makespan_s,
        slowdowns: Some(out.apps.iter().map(|a| a.slowdown).collect()),
        waits: Some(out.apps.iter().map(|a| a.wait_s).collect()),
    };
    Ok((record, out.sim_events, metrics))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::context::{repeat, ExpCtx};

    fn tiny_campaign(reps: usize) -> Campaign {
        Campaign::new("fig04", ExpCtx::default().seed).cell(
            "S1Ethernet-n2-p8",
            CellConfig::new(
                Scenario::S1Ethernet,
                4,
                ChooserKind::RoundRobin,
                IorConfig::paper_default(2),
            ),
            reps,
        )
    }

    #[test]
    fn fleet_free_cells_keep_pre_fleet_cache_keys() {
        // The pinned key was computed before `CellConfig.fleet` existed;
        // a fleet-free cell must keep producing it, or every cached
        // campaign result would silently orphan.
        let campaign = tiny_campaign(4);
        let json = serde_json::to_string(&campaign.cells[0].config).unwrap();
        assert!(!json.contains("fleet"), "{json}");
        assert_eq!(
            cell_key(&campaign.name, campaign.seed, &campaign.cells[0]),
            "a5d5c26379407b58916b1d98cbeea203"
        );
    }

    #[test]
    fn fleet_cells_run_on_their_own_platform() {
        let spec = cluster::FleetSpec::new("fleet-2x2")
            .servers(2)
            .targets_per_server(2)
            .server_link(simcore::units::Bandwidth::from_mib_per_sec(1100.0))
            .backend(simcore::units::Bandwidth::from_mib_per_sec(4700.0))
            .target_bw(simcore::units::Bandwidth::from_mib_per_sec(1700.0))
            .switch_policy(cluster::SwitchPolicy::NonBlocking);
        let config = CellConfig::new(
            Scenario::S2Omnipath,
            4,
            ChooserKind::RoundRobin,
            IorConfig::paper_default(2),
        )
        .with_fleet(spec.clone());
        // The fleet travels through the cache identity...
        let cell = CellSpec {
            label: "c".into(),
            config: config.clone(),
            reps: 2,
        };
        assert_ne!(
            cell_key("fleet-smoke", 1, &cell),
            cell_key(
                "fleet-smoke",
                1,
                &CellSpec {
                    config: cell.config.clone().with_fleet(spec.racks(2)),
                    ..cell.clone()
                }
            ),
            "different fleets must key differently"
        );
        // ...and the engine deploys on it.
        let outcome = CampaignEngine::in_memory()
            .run(&Campaign::new("fleet-smoke", 1).cell("c", config, 2))
            .unwrap();
        let bw = outcome.cells[0].bandwidths();
        assert_eq!(bw.len(), 2);
        assert!(bw.iter().all(|&x| x > 0.0), "{bw:?}");
    }

    #[test]
    fn engine_matches_the_legacy_repeat_loop_bit_for_bit() {
        let ctx = ExpCtx::quick(4);
        let factory = ctx.rng_factory("fig04");
        let cfg = IorConfig::paper_default(2);
        let legacy = repeat(&factory, "S1Ethernet-n2-p8", 4, |rng, _| {
            let mut fs = deploy(Scenario::S1Ethernet, 4, ChooserKind::RoundRobin);
            let (out, _) = Run::new(&mut fs).app(cfg).execute(rng).unwrap();
            out.try_single().unwrap().bandwidth.mib_per_sec()
        });
        let outcome = CampaignEngine::in_memory().run(&tiny_campaign(4)).unwrap();
        assert_eq!(outcome.cells[0].bandwidths(), legacy);
    }

    #[test]
    fn in_memory_engine_counts_every_rep() {
        let engine = CampaignEngine::in_memory();
        let outcome = engine.run(&tiny_campaign(3)).unwrap();
        assert_eq!(engine.executed_reps(), 3);
        assert_eq!(outcome.stats.reps_computed, 3);
        assert_eq!(outcome.stats.reps_cached, 0);
        assert_eq!(outcome.stats.cells_computed, 1);
        assert_eq!(outcome.stats.cache_hit_rate(), 0.0);
        assert!(outcome.stats.sim_secs > 0.0);
        assert!(outcome.stats.sim_events > 0);
        assert_eq!(outcome.cell_metrics.len(), 1);
        let cm = &outcome.cell_metrics[0];
        assert_eq!(cm.reps_computed, 3);
        assert_eq!(cm.sim_events, outcome.stats.sim_events);
        assert!(!cm.failed);
        // Re-running without a store recomputes everything.
        engine.run(&tiny_campaign(3)).unwrap();
        assert_eq!(engine.executed_reps(), 6);
    }

    #[test]
    fn failed_cells_report_their_label_and_keep_good_cells() {
        let bad = CellConfig::new(
            Scenario::S1Ethernet,
            4,
            ChooserKind::RoundRobin,
            // 999 nodes: oversubscribes the 16-node Ethernet partition.
            IorConfig::paper_default(999),
        );
        let campaign = tiny_campaign(2).cell("bad", bad, 2);
        let err = CampaignEngine::in_memory().run(&campaign).unwrap_err();
        match err {
            CampaignError::Cells {
                failed,
                label,
                rep,
                source,
            } => {
                assert_eq!(failed, 1);
                assert_eq!(label, "bad");
                assert_eq!(rep, 0);
                assert!(matches!(
                    source,
                    RepError::Run(RunError::Oversubscribed { .. })
                ));
            }
            other => panic!("unexpected error {other}"),
        }
    }

    #[test]
    fn sched_workload_hedge_roundtrips_and_is_omitted_when_absent() {
        let plain = SchedWorkload {
            policy: SchedPolicyKind::Random,
            rate_per_s: 0.35,
            count: 10,
            stripe: 4,
            hedge: None,
            mode: AdmissionMode::FrozenOracle,
        };
        let json = serde_json::to_string(&plain).unwrap();
        // Byte stability: a pre-hedging, frozen-mode workload serializes
        // without either optional field, so existing cache keys are
        // unchanged.
        assert!(!json.contains("hedge"), "{json}");
        assert!(!json.contains("mode"), "{json}");
        let back: SchedWorkload = serde_json::from_str(&json).unwrap();
        assert_eq!(back, plain);

        let hedged = SchedWorkload {
            policy: SchedPolicyKind::StragglerAware,
            hedge: Some(HedgeConfig::default()),
            ..plain
        };
        let json = serde_json::to_string(&hedged).unwrap();
        let back: SchedWorkload = serde_json::from_str(&json).unwrap();
        assert_eq!(back, hedged);

        // The online mode rides in the serialized form (cells of the two
        // modes must key differently) and round-trips.
        let online = SchedWorkload {
            mode: AdmissionMode::Online,
            ..plain
        };
        let json = serde_json::to_string(&online).unwrap();
        assert!(json.contains("mode"), "{json}");
        let back: SchedWorkload = serde_json::from_str(&json).unwrap();
        assert_eq!(back, online);
    }

    #[test]
    fn cell_metrics_tail_is_omitted_for_plain_cells() {
        let outcome = CampaignEngine::in_memory().run(&tiny_campaign(2)).unwrap();
        let cm = &outcome.cell_metrics[0];
        assert!(cm.tail.is_none(), "plain cell grew a tail digest");
        let json = serde_json::to_string(cm).unwrap();
        assert!(!json.contains("tail"), "{json}");
        let back: CellMetrics = serde_json::from_str(&json).unwrap();
        assert_eq!(&back, cm);
    }

    #[test]
    fn scheduled_cells_surface_tail_metrics() {
        let campaign = Campaign::new("tail-test", 7).cell(
            "sched",
            CellConfig::new(
                Scenario::S1Ethernet,
                4,
                ChooserKind::Random,
                IorConfig::paper_default(2),
            )
            .with_sched(SchedWorkload {
                policy: SchedPolicyKind::LeastLoadedServer,
                rate_per_s: 0.5,
                count: 4,
                stripe: 4,
                hedge: None,
                mode: AdmissionMode::FrozenOracle,
            }),
            2,
        );
        let outcome = CampaignEngine::in_memory().run(&campaign).unwrap();
        let tail = outcome.cell_metrics[0]
            .tail
            .expect("scheduled cell has a tail digest");
        assert!(tail.p50 <= tail.p95 && tail.p95 <= tail.p99);
        assert!(tail.iqr >= 0.0);
        let back: CellMetrics =
            serde_json::from_str(&serde_json::to_string(&outcome.cell_metrics[0]).unwrap())
                .unwrap();
        assert_eq!(back, outcome.cell_metrics[0]);
    }

    #[test]
    fn run_metrics_merge_every_rep_and_are_byte_stable() {
        let (outcome, reg) = CampaignEngine::in_memory()
            .run_with_metrics(&tiny_campaign(3))
            .unwrap();
        // Every simulated rep contributed its registry: the merged event
        // counter is exactly the stats' event total, and the campaign
        // counters mirror the run breakdown.
        assert_eq!(reg.counter("ior.runs"), 3);
        assert_eq!(
            reg.counter("sim.events_processed"),
            outcome.stats.sim_events
        );
        assert_eq!(reg.counter("campaign.reps_computed"), 3);
        assert_eq!(reg.counter("campaign.reps_cached"), 0);
        assert!(reg.histogram("ior.target_bytes").is_some());
        assert_eq!(reg.counter("sim.arena.recycles"), 3, "one arena per rep");
        // Merge order is engine-controlled and merges commute, so two
        // identical cold runs snapshot byte-identically.
        let (_, again) = CampaignEngine::in_memory()
            .run_with_metrics(&tiny_campaign(3))
            .unwrap();
        assert_eq!(reg.to_json(), again.to_json());
    }

    #[test]
    fn scheduled_reps_feed_the_run_registry() {
        let campaign = Campaign::new("sched-metrics", 7).cell(
            "sched",
            CellConfig::new(
                Scenario::S1Ethernet,
                4,
                ChooserKind::Random,
                IorConfig::paper_default(2),
            )
            .with_sched(SchedWorkload {
                policy: SchedPolicyKind::LeastLoadedServer,
                rate_per_s: 0.5,
                count: 4,
                stripe: 4,
                hedge: None,
                mode: AdmissionMode::FrozenOracle,
            }),
            2,
        );
        let (outcome, reg) = CampaignEngine::in_memory()
            .run_with_metrics(&campaign)
            .unwrap();
        assert_eq!(reg.counter("sched.admissions"), 8, "4 arrivals x 2 reps");
        assert_eq!(reg.counter("sched.decisions.LeastLoadedServer"), 8);
        assert_eq!(
            reg.counter("sched.measurement_sim_events") + reg.counter("sched.solo_sim_events"),
            outcome.stats.sim_events
        );
    }

    #[test]
    fn warm_runs_persist_an_idle_snapshot_and_cold_runs_match() {
        let dir = std::env::temp_dir().join(format!("campaign-snap-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let engine = CampaignEngine::with_store(&dir).unwrap();
        let (_, cold) = engine.run_with_metrics(&tiny_campaign(2)).unwrap();
        let path = engine.metrics_snapshot_path("fig04").unwrap();
        let persisted = std::fs::read_to_string(&path).unwrap();
        assert_eq!(persisted, cold.to_json());
        // A warm re-run simulates nothing: its snapshot holds only the
        // engine's own counters, and it overwrites the cold one.
        let (_, warm) = engine.run_with_metrics(&tiny_campaign(2)).unwrap();
        assert_eq!(warm.counter("ior.runs"), 0);
        assert_eq!(warm.counter("campaign.reps_cached"), 2);
        assert_eq!(std::fs::read_to_string(&path).unwrap(), warm.to_json());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn cell_config_roundtrips_through_json() {
        let cfg = CellConfig::new(
            Scenario::S2Omnipath,
            8,
            ChooserKind::Balanced,
            IorConfig::paper_default(16),
        )
        .with_apps(2)
        .with_policy(RetryPolicy::default());
        let json = serde_json::to_string(&cfg).unwrap();
        let back: CellConfig = serde_json::from_str(&json).unwrap();
        assert_eq!(back, cfg);
    }
}
