//! Scheduler policy comparison — beyond the paper's figures.
//!
//! The paper shows that *which* targets an application lands on decides
//! its bandwidth, but BeeGFS allocates blindly, one file at a time.
//! This experiment serves the same Poisson stream of applications
//! through the online scheduler under each placement policy and
//! compares what the paper's findings predict a load-aware allocator
//! should win: per-application slowdown (mean and p99) and Equation-1
//! aggregate bandwidth.
//!
//! One cell per policy, all on scenario 1 with the stock `Random`
//! chooser as the deferred baseline, so the `Random` policy cell *is*
//! today's BeeGFS behaviour under the identical arrival stream.

use crate::campaign::{
    Campaign, CampaignEngine, CampaignError, CampaignOutcome, CellConfig, SchedPolicyKind,
    SchedWorkload,
};
use crate::context::{ExpCtx, Scenario};
use beegfs_core::ChooserKind;
use ior::IorConfig;
use sched::AdmissionMode;
use serde::{Deserialize, Serialize};
use simcore::units::GIB;

/// Arrival rate of the stream, applications per second.
pub const RATE_PER_S: f64 = 0.35;
/// Applications per repetition.
pub const COUNT: usize = 10;
/// Compute nodes per application.
pub const NODES: usize = 4;
/// Bytes written per application.
pub const BYTES: u64 = 4 * GIB;
/// Storage-target demand (stripe width) per application.
pub const STRIPE: u32 = 4;

/// One policy's pooled results across repetitions.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct PolicyResult {
    /// The placement policy.
    pub policy: SchedPolicyKind,
    /// Per-application slowdowns pooled over every repetition.
    pub slowdowns: Vec<f64>,
    /// Equation-1 aggregate bandwidth per repetition, MiB/s.
    pub aggregates: Vec<f64>,
}

impl PolicyResult {
    /// Mean per-application slowdown over the pool.
    pub fn mean_slowdown(&self) -> f64 {
        self.slowdowns.iter().sum::<f64>() / self.slowdowns.len() as f64
    }

    /// Nearest-rank `q`-quantile of the pooled slowdowns.
    pub fn slowdown_quantile(&self, q: f64) -> f64 {
        let mut s = self.slowdowns.clone();
        s.sort_by(f64::total_cmp);
        let rank = ((q * s.len() as f64).ceil() as usize).clamp(1, s.len());
        s[rank - 1]
    }

    /// Mean aggregate bandwidth over the repetitions, MiB/s.
    pub fn mean_aggregate(&self) -> f64 {
        self.aggregates.iter().sum::<f64>() / self.aggregates.len() as f64
    }
}

/// The experiment's data: one result per policy, in
/// [`SchedPolicyKind::ALL`] order.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct FigSched {
    /// Per-policy pooled results.
    pub policies: Vec<PolicyResult>,
    /// Which admission mode priced the slowdowns (the frozen-oracle
    /// reference or the continuous online engine).
    pub mode: AdmissionMode,
}

impl FigSched {
    /// Look up one policy's result.
    ///
    /// # Panics
    /// Panics if the policy was not part of the run.
    pub fn policy(&self, kind: SchedPolicyKind) -> &PolicyResult {
        self.policies
            .iter()
            .find(|p| p.policy == kind)
            .unwrap_or_else(|| panic!("policy {} not in the run", kind.label()))
    }
}

/// The campaign: one scenario-1 cell per placement policy. Arrival
/// times draw from a label-independent stream, so at each rep every
/// policy faces the *same* arrival instants — the classic paired
/// (common-random-numbers) comparison.
pub fn campaign(ctx: &ExpCtx) -> Campaign {
    campaign_with_mode(ctx, AdmissionMode::FrozenOracle)
}

/// The same campaign priced by an explicit admission mode. Cell labels
/// (and therefore arrival streams and placement draws) are identical
/// across modes, so an online run is directly comparable to its
/// frozen-oracle twin; the cache keys differ through the workload's
/// serialized `mode`.
pub fn campaign_with_mode(ctx: &ExpCtx, mode: AdmissionMode) -> Campaign {
    let mut c = Campaign::new("fig_sched", ctx.seed);
    for kind in SchedPolicyKind::ALL {
        c = c.cell(
            format!("S1Ethernet-{}", kind.label()),
            CellConfig::new(
                Scenario::S1Ethernet,
                STRIPE,
                ChooserKind::Random,
                IorConfig::paper_default(NODES).with_total_bytes(BYTES),
            )
            .with_sched(SchedWorkload {
                policy: kind,
                rate_per_s: RATE_PER_S,
                count: COUNT,
                stripe: STRIPE,
                hedge: None,
                mode,
            }),
            ctx.reps,
        );
    }
    c
}

/// Run the experiment on an engine (cached when the engine has a store).
pub fn run_on(engine: &CampaignEngine, ctx: &ExpCtx) -> Result<FigSched, CampaignError> {
    run_detailed(engine, ctx, AdmissionMode::FrozenOracle).map(|(fig, _, _)| fig)
}

/// Run the experiment under an explicit admission mode and return the
/// figure plus the raw campaign outcome (for wait tails and run stats)
/// and the merged metrics registry (for admission counters).
pub fn run_detailed(
    engine: &CampaignEngine,
    ctx: &ExpCtx,
    mode: AdmissionMode,
) -> Result<(FigSched, CampaignOutcome, obs::metrics::MetricsRegistry), CampaignError> {
    let (outcome, registry) = engine.run_with_metrics(&campaign_with_mode(ctx, mode))?;
    let policies = SchedPolicyKind::ALL
        .into_iter()
        .zip(&outcome.cells)
        .map(|(policy, cell)| PolicyResult {
            policy,
            slowdowns: cell
                .reps
                .iter()
                .flat_map(|r| {
                    r.slowdowns
                        .clone()
                        .expect("scheduled cells record slowdowns")
                })
                .collect(),
            aggregates: cell.aggregate_bandwidths(),
        })
        .collect();
    Ok((FigSched { policies, mode }, outcome, registry))
}

/// Run the experiment uncached.
pub fn run(ctx: &ExpCtx) -> FigSched {
    run_on(&CampaignEngine::in_memory(), ctx).expect("experiment run failed")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn load_aware_placement_beats_blind_random() {
        let fig = run(&ExpCtx::quick(4));
        assert_eq!(fig.policies.len(), 4);
        for p in &fig.policies {
            assert_eq!(p.slowdowns.len(), 4 * COUNT, "{}", p.policy.label());
            // Solo baselines draw their own run-to-run noise, so an
            // uncontended app can land a few percent under 1.0.
            assert!(p.slowdowns.iter().all(|&s| s > 0.8), "{}", p.policy.label());
            assert!(p.mean_aggregate() > 0.0);
            assert!(p.mean_slowdown() <= p.slowdown_quantile(0.99) + 1e-12);
        }
        // The acceptance criterion: feedback-driven placement is at
        // least as good as blind random allocation on aggregate
        // bandwidth under the same arrival stream.
        let random = fig.policy(SchedPolicyKind::Random);
        let feedback = fig.policy(SchedPolicyKind::UtilizationFeedback);
        assert!(
            feedback.mean_aggregate() >= random.mean_aggregate(),
            "UtilizationFeedback {} < Random {}",
            feedback.mean_aggregate(),
            random.mean_aggregate()
        );
    }
}
