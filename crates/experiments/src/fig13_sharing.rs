//! Figure 13 — do applications suffer from sharing the *same* targets?
//!
//! Two concurrent applications, stripe count 4, scenario 2. On PlaFRIM
//! the round-robin chooser admits only two stripe-4 allocations (both
//! `(1,3)`), so two applications either share *all four* targets or
//! share *none*. The paper separates the individual bandwidths into
//! those two groups, checks normality (KS), and runs Welch's t-test:
//! p = 0.9031 — the means cannot be distinguished, i.e. the slow-down
//! comes from sharing the platform's bandwidth, not from target
//! contention (lesson 7).
//!
//! **Known deviation** (see EXPERIMENTS.md): the simulator reproduces
//! the *setup* faithfully — both groups occur, at roughly the paper's
//! 1/3-shared : 2/3-disjoint frequencies — but finds the disjoint group
//! *faster* (all eight targets active instead of four). The paper's null
//! result requires PlaFRIM to gain essentially nothing from 4 -> 8
//! active OSTs at 16 client nodes, which is incompatible with any
//! monotone device-concurrency curve that also reproduces the paper's
//! own single-node measurement (Fig. 4b, N=1: ~1631 MiB/s): an
//! un-instrumented server-side ceiling on their testbed is the likely
//! cause. The lesson itself ("sharing targets does not degrade the
//! aggregate") is still confirmed by the all-shared stripe-8 cells of
//! Fig. 12, where this model shows no degradation either.

use crate::context::{deploy, repeat, ExpCtx, Scenario};
use crate::fig12_concurrent::NODES_PER_APP;
use beegfs_core::ChooserKind;
use ior::{AppSpec, IorConfig, Run};
use iostats::{ks_normality_test, welch_t_test, KsResult, WelchResult};
use serde::{Deserialize, Serialize};

/// The experiment's outcome.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Fig13 {
    /// Individual bandwidths (MiB/s) when the two apps used the *same*
    /// four targets.
    pub shared_same: Vec<f64>,
    /// Individual bandwidths when they used disjoint target sets.
    pub all_different: Vec<f64>,
    /// KS normality gate on each group.
    pub ks_same: KsResult,
    /// KS normality gate on the disjoint group.
    pub ks_different: KsResult,
    /// Welch's t-test between the groups.
    pub welch: WelchResult,
}

/// Run the experiment.
pub fn run(ctx: &ExpCtx) -> Fig13 {
    let factory = ctx.rng_factory("fig13");
    let cfg = IorConfig::paper_default(NODES_PER_APP);
    // Collect (targets_equal, [bw_app1, bw_app2]) per run.
    let runs = repeat(&factory, "two-apps-s4", ctx.reps, |rng, _| {
        let mut fs = deploy(Scenario::S2Omnipath, 4, ChooserKind::RoundRobin);
        let (out, _) = Run::new(&mut fs)
            .app(AppSpec::new(cfg))
            .app(AppSpec::new(cfg))
            .execute(rng)
            .expect("experiment run failed");
        let mut a = out.apps[0].file_targets[0].clone();
        let mut b = out.apps[1].file_targets[0].clone();
        a.sort();
        b.sort();
        let same = a == b;
        (
            same,
            [
                out.apps[0].bandwidth.mib_per_sec(),
                out.apps[1].bandwidth.mib_per_sec(),
            ],
        )
    });

    let mut shared_same = Vec::new();
    let mut all_different = Vec::new();
    for (same, bws) in runs {
        let bucket = if same {
            &mut shared_same
        } else {
            &mut all_different
        };
        bucket.extend_from_slice(&bws);
    }
    assert!(
        shared_same.len() >= 4 && all_different.len() >= 4,
        "both groups need observations (same: {}, different: {}) — raise reps",
        shared_same.len(),
        all_different.len()
    );
    let ks_same = ks_normality_test(&shared_same);
    let ks_different = ks_normality_test(&all_different);
    let welch = welch_t_test(&shared_same, &all_different);
    Fig13 {
        shared_same,
        all_different,
        ks_same,
        ks_different,
        welch,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn both_groups_occur_at_paper_frequencies() {
        // The paper observes roughly 1/3 shared, 2/3 disjoint — driven by
        // the tenant-churn parity of the round-robin cursor.
        let fig = run(&ExpCtx::quick(60));
        let n_same = fig.shared_same.len();
        let n_diff = fig.all_different.len();
        assert!(n_same > 0 && n_diff > 0);
        let frac_same = n_same as f64 / (n_same + n_diff) as f64;
        assert!(
            (0.15..0.60).contains(&frac_same),
            "shared-fraction {frac_same} (paper: ~1/3)"
        );
    }

    #[test]
    fn groups_pass_normality_gate() {
        let fig = run(&ExpCtx::quick(60));
        assert!(
            fig.ks_same.p > 0.01,
            "shared group non-normal: {}",
            fig.ks_same.p
        );
        assert!(
            fig.ks_different.p > 0.01,
            "disjoint group non-normal: {}",
            fig.ks_different.p
        );
    }

    #[test]
    fn known_deviation_disjoint_is_faster_in_the_model() {
        // Documented deviation from the paper (p = 0.9031, no difference):
        // the simulator's device-concurrency curve rewards activating all
        // eight targets, so the disjoint group is faster. If a model
        // change ever flips this, EXPERIMENTS.md's deviation entry must
        // be revisited.
        let fig = run(&ExpCtx::quick(60));
        assert!(
            fig.welch.mean_b > fig.welch.mean_a,
            "disjoint (mean_b {}) expected above shared (mean_a {})",
            fig.welch.mean_b,
            fig.welch.mean_a
        );
    }
}
