//! Figure 11 — scenario 2 node sweeps at several stripe counts.
//!
//! The justification for using 32 nodes in Fig. 6b: "with more storage
//! targets higher peak performance is available, but that performance
//! can only be achieved with more compute nodes" (lesson 6).

use crate::campaign::{Campaign, CampaignEngine, CampaignError, CellConfig};
use crate::context::{ExpCtx, Scenario};
use beegfs_core::ChooserKind;
use ior::IorConfig;
use serde::{Deserialize, Serialize};

/// One (stripe count, node count) cell: mean bandwidth.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Cell {
    /// Stripe count of the series.
    pub stripe_count: u32,
    /// Node count of the point.
    pub nodes: usize,
    /// Mean bandwidth (MiB/s) over the repetitions.
    pub mean_mib_s: f64,
}

/// The full figure: mean bandwidth per (stripe, nodes).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Fig11 {
    /// All cells, series-major.
    pub cells: Vec<Cell>,
    /// The node counts swept.
    pub node_counts: Vec<usize>,
    /// The stripe counts swept.
    pub stripe_counts: Vec<u32>,
}

/// Node counts swept (paper Fig. 11 x-axis).
pub const NODES: [usize; 7] = [1, 2, 4, 8, 16, 24, 32];
/// Stripe counts swept (paper Fig. 11 series).
pub const STRIPES: [u32; 4] = [1, 2, 4, 8];

/// The campaign describing this figure's grid. The name and cell labels
/// match the pre-campaign harness, so results are bit-identical to what
/// the hand-rolled loop produced.
pub fn campaign(ctx: &ExpCtx) -> Campaign {
    let mut c = Campaign::new("fig11", ctx.seed);
    for &stripe_count in &STRIPES {
        for &nodes in &NODES {
            c = c.cell(
                format!("s{stripe_count}-n{nodes}"),
                CellConfig::new(
                    Scenario::S2Omnipath,
                    stripe_count,
                    ChooserKind::RoundRobin,
                    IorConfig::paper_default(nodes),
                ),
                ctx.reps,
            );
        }
    }
    c
}

/// Run the experiment on an engine (scenario 2 only, as in the paper).
pub fn run_on(engine: &CampaignEngine, ctx: &ExpCtx) -> Result<Fig11, CampaignError> {
    let outcome = engine.run(&campaign(ctx))?;
    let mut results = outcome.cells.into_iter();
    let mut cells = Vec::new();
    for &stripe_count in &STRIPES {
        for &nodes in &NODES {
            let samples = results.next().expect("one result per cell").bandwidths();
            cells.push(Cell {
                stripe_count,
                nodes,
                mean_mib_s: samples.iter().sum::<f64>() / samples.len() as f64,
            });
        }
    }
    Ok(Fig11 {
        cells,
        node_counts: NODES.to_vec(),
        stripe_counts: STRIPES.to_vec(),
    })
}

/// Run the experiment (scenario 2 only, as in the paper; uncached).
pub fn run(ctx: &ExpCtx) -> Fig11 {
    run_on(&CampaignEngine::in_memory(), ctx).expect("experiment run failed")
}

impl Fig11 {
    /// Mean at a (stripe, nodes) cell.
    ///
    /// # Panics
    /// Panics if the cell was not swept.
    pub fn mean(&self, stripe_count: u32, nodes: usize) -> f64 {
        self.cells
            .iter()
            .find(|c| c.stripe_count == stripe_count && c.nodes == nodes)
            .unwrap_or_else(|| panic!("cell ({stripe_count}, {nodes}) not swept"))
            .mean_mib_s
    }

    /// Smallest node count reaching `1 - tol` of a series' peak.
    pub fn plateau_nodes(&self, stripe_count: u32, tol: f64) -> usize {
        let peak = self
            .node_counts
            .iter()
            .map(|&n| self.mean(stripe_count, n))
            .fold(0.0, f64::max);
        *self
            .node_counts
            .iter()
            .find(|&&n| self.mean(stripe_count, n) >= (1.0 - tol) * peak)
            .expect("non-empty sweep")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn more_targets_more_peak_more_nodes_needed() {
        let fig = run(&ExpCtx::quick(8));
        // Peaks grow with stripe count.
        let peak = |s: u32| NODES.iter().map(|&n| fig.mean(s, n)).fold(0.0f64, f64::max);
        assert!(peak(2) > peak(1));
        assert!(peak(4) > peak(2));
        assert!(peak(8) > peak(4));
        // Plateau node count is non-decreasing with stripe count.
        let p1 = fig.plateau_nodes(1, 0.08);
        let p8 = fig.plateau_nodes(8, 0.08);
        assert!(p8 > p1, "plateau: stripe1 {p1}, stripe8 {p8}");
    }

    #[test]
    fn few_nodes_compress_the_stripe_effect() {
        // Lesson 1/2: with too few nodes, the low bandwidth hides most of
        // the stripe-count effect that 32 nodes reveal — the spread
        // across stripe counts is several times smaller at 1 node.
        let fig = run(&ExpCtx::quick(8));
        let spread_at = |n: usize| {
            let v: Vec<f64> = STRIPES.iter().map(|&s| fig.mean(s, n)).collect();
            (v.iter().cloned().fold(f64::NEG_INFINITY, f64::max)
                - v.iter().cloned().fold(f64::INFINITY, f64::min))
                / v[0]
        };
        let s1 = spread_at(1);
        let s32 = spread_at(32);
        assert!(s32 > 3.0, "32-node spread {s32}");
        assert!(s1 < 0.4 * s32, "1-node spread {s1} vs 32-node {s32}");
    }
}
