//! Figure 4 — bandwidth vs number of compute nodes.
//!
//! 8 processes per node, stripe count 4 (deployed default), 32 GiB total;
//! scenario 1 plateaus around 1.4–1.5 GiB/s within a few nodes, scenario
//! 2 keeps climbing to ~6 GiB/s and needs ~16 nodes (lessons 1 and 2).

use crate::campaign::{Campaign, CampaignEngine, CampaignError, CellConfig};
use crate::context::{ExpCtx, Scenario};
use beegfs_core::ChooserKind;
use ior::IorConfig;
use iostats::Summary;
use serde::{Deserialize, Serialize};

/// One node-count point.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct NodePoint {
    /// Compute nodes used.
    pub nodes: usize,
    /// Bandwidth samples (MiB/s).
    pub samples: Vec<f64>,
}

impl NodePoint {
    /// Summary statistics.
    pub fn summary(&self) -> Summary {
        Summary::from_sample(&self.samples)
    }
}

/// The figure's data for one scenario.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Fig04 {
    /// Which scenario (4a or 4b).
    pub scenario: Scenario,
    /// Points in increasing node order.
    pub points: Vec<NodePoint>,
    /// Processes per node used (8 for Fig. 4; 16 reused by Fig. 5).
    pub ppn: u32,
}

/// Node counts swept per scenario (scenario 2 needs more).
pub fn node_counts(scenario: Scenario) -> Vec<usize> {
    match scenario {
        Scenario::S1Ethernet => vec![1, 2, 3, 4, 6, 8, 12, 16],
        Scenario::S2Omnipath => vec![1, 2, 4, 8, 12, 16, 20, 24, 28, 32],
    }
}

/// The campaign describing this figure's grid at a given ppn. The name
/// and cell labels match the pre-campaign harness, so results are
/// bit-identical to what the hand-rolled loop produced.
pub fn campaign(ctx: &ExpCtx, scenario: Scenario, ppn: u32) -> Campaign {
    let mut c = Campaign::new("fig04", ctx.seed);
    for nodes in node_counts(scenario) {
        c = c.cell(
            format!("{scenario:?}-n{nodes}-p{ppn}"),
            CellConfig::new(
                scenario,
                4,
                ChooserKind::RoundRobin,
                IorConfig::paper_default(nodes).with_ppn(ppn),
            ),
            ctx.reps,
        );
    }
    c
}

/// Run the experiment at the given processes-per-node on an engine.
pub fn run_with_ppn_on(
    engine: &CampaignEngine,
    ctx: &ExpCtx,
    scenario: Scenario,
    ppn: u32,
) -> Result<Fig04, CampaignError> {
    let outcome = engine.run(&campaign(ctx, scenario, ppn))?;
    let points = node_counts(scenario)
        .into_iter()
        .zip(outcome.cells)
        .map(|(nodes, cell)| NodePoint {
            nodes,
            samples: cell.bandwidths(),
        })
        .collect();
    Ok(Fig04 {
        scenario,
        points,
        ppn,
    })
}

/// Run the experiment at the given processes-per-node (uncached).
pub fn run_with_ppn(ctx: &ExpCtx, scenario: Scenario, ppn: u32) -> Fig04 {
    run_with_ppn_on(&CampaignEngine::in_memory(), ctx, scenario, ppn)
        .expect("experiment run failed")
}

/// Run the experiment with the paper's 8 processes per node on an engine.
pub fn run_on(
    engine: &CampaignEngine,
    ctx: &ExpCtx,
    scenario: Scenario,
) -> Result<Fig04, CampaignError> {
    run_with_ppn_on(engine, ctx, scenario, 8)
}

/// Run the experiment with the paper's 8 processes per node.
pub fn run(ctx: &ExpCtx, scenario: Scenario) -> Fig04 {
    run_with_ppn(ctx, scenario, 8)
}

impl Fig04 {
    /// Mean bandwidth at a node count.
    ///
    /// # Panics
    /// Panics if the node count was not swept.
    pub fn mean_at(&self, nodes: usize) -> f64 {
        self.points
            .iter()
            .find(|p| p.nodes == nodes)
            .unwrap_or_else(|| panic!("node count {nodes} not swept"))
            .summary()
            .mean
    }

    /// Smallest node count whose mean is within `tol` of the maximum
    /// mean (the paper's "plateau" point).
    pub fn plateau_nodes(&self, tol: f64) -> usize {
        let peak = self
            .points
            .iter()
            .map(|p| p.summary().mean)
            .fold(0.0, f64::max);
        self.points
            .iter()
            .find(|p| p.summary().mean >= (1.0 - tol) * peak)
            .expect("non-empty sweep")
            .nodes
    }

    /// Relative gain from one node to the plateau (the lesson-1 numbers:
    /// +64% in scenario 1, +270% in scenario 2).
    pub fn gain_to_plateau(&self) -> f64 {
        let first = self.mean_at(self.points[0].nodes);
        let peak = self
            .points
            .iter()
            .map(|p| p.summary().mean)
            .fold(0.0, f64::max);
        (peak - first) / first
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scenario1_shape() {
        let fig = run(&ExpCtx::quick(10), Scenario::S1Ethernet);
        // ~880 MiB/s at one node.
        let one = fig.mean_at(1);
        assert!((750.0..1000.0).contains(&one), "1-node mean {one}");
        // Plateau early, around 1.4-1.6 GiB/s.
        assert!(fig.plateau_nodes(0.05) <= 4);
        let peak = fig.mean_at(8);
        assert!((1300.0..1650.0).contains(&peak), "plateau {peak}");
        // Lesson 1: ~64% gain.
        assert!(
            fig.gain_to_plateau() > 0.4,
            "gain {}",
            fig.gain_to_plateau()
        );
    }

    #[test]
    fn scenario2_needs_more_nodes_and_gains_more() {
        let ctx = ExpCtx::quick(10);
        let s1 = run(&ctx, Scenario::S1Ethernet);
        let s2 = run(&ctx, Scenario::S2Omnipath);
        assert!(
            s2.plateau_nodes(0.05) > s1.plateau_nodes(0.05),
            "s2 plateau {} vs s1 {}",
            s2.plateau_nodes(0.05),
            s1.plateau_nodes(0.05)
        );
        // Lesson 1: the impact is heavier in scenario 2 (270% vs 64%).
        assert!(s2.gain_to_plateau() > 2.0 * s1.gain_to_plateau());
        // One-node scenario 2 ~1.6 GiB/s.
        let one = s2.mean_at(1);
        assert!((1400.0..1800.0).contains(&one), "1-node mean {one}");
    }
}
