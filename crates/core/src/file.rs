//! Striped files and byte-range → target mapping.

use crate::stripe::StripePattern;
use cluster::TargetId;
use serde::{Deserialize, Serialize};

/// An open striped file: its target list (in stripe-slot order) and
/// striping parameters, fixed at creation time.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FileHandle {
    /// File id (unique within one `BeeGfs` instance).
    pub id: u64,
    /// Targets in slot order: chunk `i` lives on `targets[i % count]`.
    pub targets: Vec<TargetId>,
    /// The striping parameters inherited from the directory.
    pub pattern: StripePattern,
}

impl FileHandle {
    /// Build a handle, checking the target list length against the
    /// pattern.
    ///
    /// # Panics
    /// Panics if `targets.len() != pattern.stripe_count`.
    pub fn new(id: u64, targets: Vec<TargetId>, pattern: StripePattern) -> Self {
        assert_eq!(
            targets.len(),
            pattern.stripe_count as usize,
            "target list must match the stripe count"
        );
        FileHandle {
            id,
            targets,
            pattern,
        }
    }

    /// The target storing byte `offset`.
    pub fn target_of(&self, offset: u64) -> TargetId {
        self.targets[self.pattern.slot_of(offset) as usize]
    }

    /// Bytes each *target* receives from the contiguous write
    /// `[offset, offset + len)`: the per-slot distribution mapped through
    /// the file's target list. Zero-byte targets are included.
    pub fn bytes_per_target(&self, offset: u64, len: u64) -> Vec<(TargetId, u64)> {
        self.pattern
            .bytes_per_slot(offset, len)
            .into_iter()
            .enumerate()
            .map(|(slot, bytes)| (self.targets[slot], bytes))
            .collect()
    }
}

/// The byte plan of a mid-flight restripe: what stays on the old stripe
/// set and what moves to the new one.
///
/// `drained` is the per-target distribution of the `[0, issued)` prefix
/// over the *old* handle (those chunks were already sent and are left to
/// finish where they are); `redirected` is the distribution of the
/// `[issued, total)` remainder over the *new* handle. The two sides sum
/// to exactly `total` bytes — the conservation property the restripe
/// property tests pin.
#[derive(Debug, Clone, PartialEq)]
pub struct RestripeSplit {
    /// Bytes per old-stripe target for the already-issued prefix.
    pub drained: Vec<(TargetId, u64)>,
    /// Bytes per new-stripe target for the not-yet-issued remainder.
    pub redirected: Vec<(TargetId, u64)>,
}

impl RestripeSplit {
    /// Total bytes across both sides (equals the file size by
    /// construction; exposed for assertions).
    pub fn total_bytes(&self) -> u64 {
        self.drained
            .iter()
            .chain(self.redirected.iter())
            .map(|(_, b)| b)
            .sum()
    }
}

/// Split a `total_bytes`-byte contiguous write at the restripe point
/// `issued_bytes`: the prefix drains on `old`'s targets, the remainder
/// is redirected onto `new`'s.
///
/// Pure byte math — no services, no RNG — so the exact-conservation
/// guarantee reduces to [`StripePattern::bytes_per_slot`]'s.
///
/// # Panics
/// Panics if `issued_bytes > total_bytes`; callers validate progress
/// first (see `BeeGfs::restripe_file`).
pub fn restripe_split(
    old: &FileHandle,
    new: &FileHandle,
    total_bytes: u64,
    issued_bytes: u64,
) -> RestripeSplit {
    assert!(
        issued_bytes <= total_bytes,
        "restripe point {issued_bytes} beyond file size {total_bytes}"
    );
    RestripeSplit {
        drained: old.bytes_per_target(0, issued_bytes),
        redirected: new.bytes_per_target(issued_bytes, total_bytes - issued_bytes),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use simcore::units::{GIB, KIB, MIB};

    fn handle() -> FileHandle {
        FileHandle::new(
            1,
            vec![TargetId(0), TargetId(4), TargetId(5), TargetId(6)],
            StripePattern::new(4, 512 * KIB),
        )
    }

    #[test]
    fn target_of_follows_chunks() {
        let f = handle();
        assert_eq!(f.target_of(0), TargetId(0));
        assert_eq!(f.target_of(512 * KIB), TargetId(4));
        assert_eq!(f.target_of(2 * 512 * KIB), TargetId(5));
        assert_eq!(f.target_of(3 * 512 * KIB), TargetId(6));
        assert_eq!(f.target_of(4 * 512 * KIB), TargetId(0)); // wraps
    }

    #[test]
    fn bytes_per_target_even_for_aligned_range() {
        let f = handle();
        let dist = f.bytes_per_target(0, 4 * GIB);
        assert_eq!(dist.len(), 4);
        for (t, bytes) in &dist {
            assert_eq!(*bytes, GIB, "target {t}");
        }
    }

    #[test]
    fn bytes_per_target_conserves_total() {
        let f = handle();
        let len = 13 * MIB + 777;
        let total: u64 = f
            .bytes_per_target(3 * KIB, len)
            .iter()
            .map(|(_, b)| b)
            .sum();
        assert_eq!(total, len);
    }

    #[test]
    fn per_process_block_is_balanced_when_large() {
        // A 4 GiB process block over 4 targets: each within one chunk of
        // a quarter — the property that makes per-server load exactly
        // proportional to per-server target counts in the experiments.
        let f = handle();
        let dist = f.bytes_per_target(GIB + 512 * KIB, 4 * GIB);
        for (_, bytes) in dist {
            let frac = bytes as f64 / (4 * GIB) as f64;
            assert!((frac - 0.25).abs() < 0.001, "fraction {frac}");
        }
    }

    #[test]
    #[should_panic(expected = "target list must match")]
    fn mismatched_target_list_rejected() {
        let _ = FileHandle::new(1, vec![TargetId(0)], StripePattern::new(4, 512 * KIB));
    }

    #[test]
    fn restripe_split_conserves_bytes() {
        let old = handle();
        let new = FileHandle::new(
            1,
            vec![
                TargetId(0),
                TargetId(1),
                TargetId(2),
                TargetId(3),
                TargetId(4),
                TargetId(5),
                TargetId(6),
                TargetId(7),
            ],
            StripePattern::new(8, 512 * KIB),
        );
        let total = 4 * GIB + 13 * MIB + 5;
        for issued in [0, 1, 512 * KIB, GIB + 3 * KIB, total] {
            let split = restripe_split(&old, &new, total, issued);
            let drained: u64 = split.drained.iter().map(|(_, b)| b).sum();
            let redirected: u64 = split.redirected.iter().map(|(_, b)| b).sum();
            assert_eq!(drained, issued, "issued {issued}");
            assert_eq!(drained + redirected, total, "issued {issued}");
            assert_eq!(split.total_bytes(), total);
        }
    }

    #[test]
    fn restripe_split_redirects_from_the_cut_point() {
        // Redirected bytes start at the restripe offset, so the new
        // pattern's slot for that offset receives the first chunk.
        let old = handle();
        let new = FileHandle::new(
            1,
            vec![TargetId(2), TargetId(3)],
            StripePattern::new(2, KIB),
        );
        let split = restripe_split(&old, &new, 4 * KIB, KIB);
        // Offsets [1K,2K) → slot 1, [2K,3K) → slot 0, [3K,4K) → slot 1.
        assert_eq!(
            split.redirected,
            vec![(TargetId(2), KIB), (TargetId(3), 2 * KIB)]
        );
    }

    #[test]
    #[should_panic(expected = "beyond file size")]
    fn restripe_split_rejects_overrun() {
        let old = handle();
        let _ = restripe_split(&old, &old, KIB, 2 * KIB);
    }
}
