//! Striped files and byte-range → target mapping.

use crate::stripe::StripePattern;
use cluster::TargetId;
use serde::{Deserialize, Serialize};

/// An open striped file: its target list (in stripe-slot order) and
/// striping parameters, fixed at creation time.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FileHandle {
    /// File id (unique within one `BeeGfs` instance).
    pub id: u64,
    /// Targets in slot order: chunk `i` lives on `targets[i % count]`.
    pub targets: Vec<TargetId>,
    /// The striping parameters inherited from the directory.
    pub pattern: StripePattern,
}

impl FileHandle {
    /// Build a handle, checking the target list length against the
    /// pattern.
    ///
    /// # Panics
    /// Panics if `targets.len() != pattern.stripe_count`.
    pub fn new(id: u64, targets: Vec<TargetId>, pattern: StripePattern) -> Self {
        assert_eq!(
            targets.len(),
            pattern.stripe_count as usize,
            "target list must match the stripe count"
        );
        FileHandle {
            id,
            targets,
            pattern,
        }
    }

    /// The target storing byte `offset`.
    pub fn target_of(&self, offset: u64) -> TargetId {
        self.targets[self.pattern.slot_of(offset) as usize]
    }

    /// Bytes each *target* receives from the contiguous write
    /// `[offset, offset + len)`: the per-slot distribution mapped through
    /// the file's target list. Zero-byte targets are included.
    pub fn bytes_per_target(&self, offset: u64, len: u64) -> Vec<(TargetId, u64)> {
        self.pattern
            .bytes_per_slot(offset, len)
            .into_iter()
            .enumerate()
            .map(|(slot, bytes)| (self.targets[slot], bytes))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use simcore::units::{GIB, KIB, MIB};

    fn handle() -> FileHandle {
        FileHandle::new(
            1,
            vec![TargetId(0), TargetId(4), TargetId(5), TargetId(6)],
            StripePattern::new(4, 512 * KIB),
        )
    }

    #[test]
    fn target_of_follows_chunks() {
        let f = handle();
        assert_eq!(f.target_of(0), TargetId(0));
        assert_eq!(f.target_of(512 * KIB), TargetId(4));
        assert_eq!(f.target_of(2 * 512 * KIB), TargetId(5));
        assert_eq!(f.target_of(3 * 512 * KIB), TargetId(6));
        assert_eq!(f.target_of(4 * 512 * KIB), TargetId(0)); // wraps
    }

    #[test]
    fn bytes_per_target_even_for_aligned_range() {
        let f = handle();
        let dist = f.bytes_per_target(0, 4 * GIB);
        assert_eq!(dist.len(), 4);
        for (t, bytes) in &dist {
            assert_eq!(*bytes, GIB, "target {t}");
        }
    }

    #[test]
    fn bytes_per_target_conserves_total() {
        let f = handle();
        let len = 13 * MIB + 777;
        let total: u64 = f
            .bytes_per_target(3 * KIB, len)
            .iter()
            .map(|(_, b)| b)
            .sum();
        assert_eq!(total, len);
    }

    #[test]
    fn per_process_block_is_balanced_when_large() {
        // A 4 GiB process block over 4 targets: each within one chunk of
        // a quarter — the property that makes per-server load exactly
        // proportional to per-server target counts in the experiments.
        let f = handle();
        let dist = f.bytes_per_target(GIB + 512 * KIB, 4 * GIB);
        for (_, bytes) in dist {
            let frac = bytes as f64 / (4 * GIB) as f64;
            assert!((frac - 0.25).abs() < 0.001, "fraction {frac}");
        }
    }

    #[test]
    #[should_panic(expected = "target list must match")]
    fn mismatched_target_list_rejected() {
        let _ = FileHandle::new(1, vec![TargetId(0)], StripePattern::new(4, 512 * KIB));
    }
}
