//! BeeGFS services: management and metadata.
//!
//! The simulator models the four component categories of §II: clients
//! (in `client.rs` / the `ior` crate), the **Management Service** (MS),
//! the **Metadata Service** (MDS with its MDT), and storage (OSS/OST,
//! instantiated by the `cluster` fabric). The MS and MDS affect the
//! studied experiments only through (a) target registration order and
//! liveness — which shape target selection — and (b) the fixed cost of
//! creating/opening the shared file, which matters for small data sizes
//! (paper Fig. 2).

use crate::error::{validate_state, StateError};
use cluster::{Platform, TargetId};
use serde::{Deserialize, Serialize};
use simcore::time::SimDuration;
use storage::raid::Raid1Array;

/// Liveness/consistency state of a storage target, as tracked by the MS.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum TargetState {
    /// Reachable and consistent.
    Online,
    /// Reachable but slowed (e.g. RAID rebuild); factor in (0, 1].
    Degraded(f64),
    /// Unreachable; excluded from new stripings.
    Offline,
}

impl TargetState {
    /// The speed factor this state imposes on the device.
    pub fn speed_factor(self) -> f64 {
        match self {
            TargetState::Online => 1.0,
            TargetState::Degraded(f) => f,
            TargetState::Offline => 0.0,
        }
    }

    /// Whether new files may be striped over this target.
    pub fn selectable(self) -> bool {
        !matches!(self, TargetState::Offline)
    }
}

/// Default heartbeat interval (seconds): how long after a state change
/// clients still act on stale liveness information. BeeGFS nodes push
/// state to the management daemon and clients refresh their view
/// periodically; a few seconds is representative of the defaults.
pub const DEFAULT_HEARTBEAT_INTERVAL_S: f64 = 3.0;

/// The Management Service: registry of all components and their state.
#[derive(Debug, Clone)]
pub struct ManagementService {
    /// Registration order of the targets (drives round-robin selection).
    order: Vec<TargetId>,
    /// Current state per target (flat id index).
    states: Vec<TargetState>,
    /// Client state-refresh period, seconds (detection delay for faults).
    heartbeat_interval_s: f64,
}

impl ManagementService {
    /// Register the platform's targets in the given order.
    ///
    /// # Panics
    /// Panics if `order` is not a permutation of the platform's targets.
    pub fn new(platform: &Platform, order: Vec<TargetId>) -> Self {
        let n = platform.total_targets();
        assert_eq!(order.len(), n, "registration order must list every target");
        let mut seen = vec![false; n];
        for t in &order {
            assert!(
                t.index() < n && !seen[t.index()],
                "invalid registration order at {t}"
            );
            seen[t.index()] = true;
        }
        ManagementService {
            order,
            states: vec![TargetState::Online; n],
            heartbeat_interval_s: DEFAULT_HEARTBEAT_INTERVAL_S,
        }
    }

    /// The registration order.
    pub fn registration_order(&self) -> &[TargetId] {
        &self.order
    }

    /// Current state of a target.
    pub fn state(&self, t: TargetId) -> TargetState {
        self.states[t.index()]
    }

    /// Update a target's state (heartbeat loss, rebuild, recovery).
    ///
    /// Rejects unknown targets and `Degraded` factors outside `(0, 1]`
    /// (NaN, zero, negative or above one) — a `Degraded(0.0)` target
    /// would stay selectable yet never move a byte, silently stalling
    /// any run striped over it.
    pub fn set_state(&mut self, t: TargetId, s: TargetState) -> Result<(), StateError> {
        validate_state(s)?;
        if t.index() >= self.states.len() {
            return Err(StateError::UnknownTarget(t));
        }
        self.states[t.index()] = s;
        Ok(())
    }

    /// How long clients act on stale state after a change (seconds).
    ///
    /// A fault occurring at time `T` is *observed* by clients at
    /// `T + heartbeat_interval_s()`: until their next state refresh they
    /// keep issuing writes to the failed target and only then start the
    /// retry/backoff machinery.
    pub fn heartbeat_interval_s(&self) -> f64 {
        self.heartbeat_interval_s
    }

    /// Override the client state-refresh period (seconds).
    ///
    /// # Panics
    /// Panics if `interval_s` is negative, NaN or infinite — the interval
    /// is a deployment constant, not data, so a bad value is a programming
    /// error.
    pub fn set_heartbeat_interval_s(&mut self, interval_s: f64) {
        assert!(
            interval_s.is_finite() && interval_s >= 0.0,
            "heartbeat interval must be finite and non-negative, got {interval_s}"
        );
        self.heartbeat_interval_s = interval_s;
    }

    /// The instant clients first observe a state change that happened at
    /// `at_s` (seconds): one heartbeat later.
    pub fn observation_time_s(&self, at_s: f64) -> f64 {
        at_s + self.heartbeat_interval_s
    }

    /// Targets currently selectable for new stripings, in registration
    /// order.
    pub fn selectable_targets(&self) -> Vec<TargetId> {
        self.order
            .iter()
            .copied()
            .filter(|t| self.states[t.index()].selectable())
            .collect()
    }
}

/// The Metadata Service: one MDS with one MDT (paper §II: "each MDS can
/// have precisely one MDT").
#[derive(Debug, Clone)]
pub struct MetaService {
    /// The MDT device (SSD mirror on PlaFRIM).
    pub mdt: Raid1Array,
    /// Network round-trip to the MDS, seconds (client -> MDS -> client).
    pub rpc_rtt_s: f64,
}

impl MetaService {
    /// PlaFRIM's metadata service: SSD RAID-1 MDT, ~100 us RPC.
    pub fn plafrim() -> Self {
        MetaService {
            mdt: Raid1Array::plafrim_mdt(),
            rpc_rtt_s: 120e-6,
        }
    }

    /// Time to create a file striped over `stripe_count` targets: one MDS
    /// RPC plus the MDT inode+dirent writes. BeeGFS *defers* per-target
    /// chunk-file creation to the first write on each target, so the
    /// stripe count only adds the serialization of the (larger) stripe
    /// pattern into the inode — a small per-target term, not a storage
    /// round-trip per target.
    pub fn create_cost(&self, stripe_count: u32) -> SimDuration {
        let mdt_ops = 2.0; // dirent + inode
        let mdt_s = mdt_ops / self.mdt.ssd.metadata_ops_per_sec();
        let rpc_s = self.rpc_rtt_s * (1.0 + 0.1 * f64::from(stripe_count));
        SimDuration::from_secs_f64(mdt_s + rpc_s)
    }

    /// Time for a `stat`-like metadata read.
    pub fn stat_cost(&self) -> SimDuration {
        SimDuration::from_secs_f64(self.rpc_rtt_s + 1.0 / self.mdt.ssd.metadata_ops_per_sec())
    }

    /// Sustainable metadata operation rate (ops/s) — the MDT ceiling.
    pub fn ops_per_sec(&self) -> f64 {
        self.mdt.ssd.metadata_ops_per_sec()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::chooser::plafrim_registration_order;
    use cluster::presets;

    #[test]
    fn states_gate_selectability() {
        assert!(TargetState::Online.selectable());
        assert!(TargetState::Degraded(0.5).selectable());
        assert!(!TargetState::Offline.selectable());
        assert_eq!(TargetState::Online.speed_factor(), 1.0);
        assert_eq!(TargetState::Degraded(0.3).speed_factor(), 0.3);
        assert_eq!(TargetState::Offline.speed_factor(), 0.0);
    }

    #[test]
    fn management_tracks_states() {
        let p = presets::plafrim_ethernet();
        let mut ms = ManagementService::new(&p, plafrim_registration_order());
        assert_eq!(ms.selectable_targets().len(), 8);
        ms.set_state(TargetId(3), TargetState::Offline).unwrap();
        assert_eq!(ms.selectable_targets().len(), 7);
        assert!(!ms.selectable_targets().contains(&TargetId(3)));
        ms.set_state(TargetId(3), TargetState::Online).unwrap();
        assert_eq!(ms.selectable_targets().len(), 8);
    }

    #[test]
    fn invalid_degraded_factors_are_rejected() {
        let p = presets::plafrim_ethernet();
        let mut ms = ManagementService::new(&p, plafrim_registration_order());
        for bad in [0.0, -1.0, 1.0001, f64::NAN, f64::NEG_INFINITY] {
            let err = ms.set_state(TargetId(0), TargetState::Degraded(bad));
            assert!(
                matches!(err, Err(StateError::InvalidDegradedFactor(_))),
                "Degraded({bad}) gave {err:?}"
            );
        }
        // The state is untouched after a rejected transition.
        assert_eq!(ms.state(TargetId(0)), TargetState::Online);
        // Unknown targets are rejected, not a panic.
        assert_eq!(
            ms.set_state(TargetId(99), TargetState::Offline),
            Err(StateError::UnknownTarget(TargetId(99)))
        );
    }

    #[test]
    fn heartbeat_delay_defers_observation() {
        let p = presets::plafrim_ethernet();
        let mut ms = ManagementService::new(&p, plafrim_registration_order());
        assert_eq!(ms.heartbeat_interval_s(), DEFAULT_HEARTBEAT_INTERVAL_S);
        assert_eq!(
            ms.observation_time_s(10.0),
            10.0 + DEFAULT_HEARTBEAT_INTERVAL_S
        );
        ms.set_heartbeat_interval_s(0.5);
        assert_eq!(ms.observation_time_s(10.0), 10.5);
        ms.set_heartbeat_interval_s(0.0);
        assert_eq!(ms.observation_time_s(10.0), 10.0);
    }

    #[test]
    fn selectable_preserves_registration_order() {
        let p = presets::plafrim_ethernet();
        let ms = ManagementService::new(&p, plafrim_registration_order());
        assert_eq!(ms.selectable_targets(), plafrim_registration_order());
    }

    #[test]
    #[should_panic(expected = "invalid registration order")]
    fn duplicate_registration_rejected() {
        let p = presets::plafrim_ethernet();
        let mut order = plafrim_registration_order();
        order[0] = order[7];
        let _ = ManagementService::new(&p, order);
    }

    #[test]
    fn create_cost_grows_with_stripe_count() {
        let meta = MetaService::plafrim();
        let c1 = meta.create_cost(1).as_secs_f64();
        let c8 = meta.create_cost(8).as_secs_f64();
        assert!(c8 > c1);
        // Well under a millisecond either way: creation is not the
        // dominant cost for the 32 GiB runs, per the paper's design
        // choice to study the data path with N-1 — and chunk files are
        // created lazily, so the stripe term is small.
        assert!(c8 < 0.001, "create cost {c8}s");
    }

    #[test]
    fn stat_is_cheaper_than_create() {
        let meta = MetaService::plafrim();
        assert!(meta.stat_cost() < meta.create_cost(1));
    }

    #[test]
    fn mdt_ops_ceiling_is_ssd_bound() {
        let meta = MetaService::plafrim();
        assert!((meta.ops_per_sec() - 12_500.0).abs() < 1.0);
    }
}
