//! Target-selection heuristics.
//!
//! When a file is created, the metadata server asks the management
//! service for `stripe_count` targets. BeeGFS ships several heuristics;
//! the paper contrasts two and motivates a third:
//!
//! * [`ChooserKind::RoundRobin`] — deterministic rotation over the target
//!   registration order. This is what the PlaFRIM vendor configured; with
//!   the deployment's registration order it *always* yields a `(1,3)`
//!   placement for the default stripe count of 4 (§IV-C1).
//! * [`ChooserKind::Random`] — BeeGFS's default: sample targets uniformly
//!   without replacement, which makes every `(min,max)` split possible
//!   (and performance with intermediate stripe counts highly variable).
//! * [`ChooserKind::Balanced`] — the heuristic lesson 4 calls for: pick
//!   the same number of targets on every server (as evenly as the counts
//!   allow), randomizing which slots are used.

use crate::error::{PolicyError, StripeError};
use crate::stripe::StripePattern;
use cluster::{Platform, ServerId, TargetId};
use rand::Rng;
use serde::{Deserialize, Serialize};
use simcore::rng::{sample_without_replacement, StreamRng};

/// Which heuristic a directory uses.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ChooserKind {
    /// Rotating window over the registration order.
    RoundRobin,
    /// Uniform sampling without replacement (BeeGFS default).
    Random,
    /// Even per-server counts, random slots (the paper's recommendation
    /// for deployments that keep stripe counts below the maximum).
    Balanced,
}

/// One placement decision: the chosen targets plus the metadata a
/// decision log needs to replay or audit the choice.
///
/// Shared between the in-filesystem chooser (every
/// [`TargetSelector::decide`] yields one) and external allocation
/// policies (the `sched` crate's policies produce the same type), so a
/// single decision-log format covers both.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PlacementDecision {
    /// The chosen targets, in selection order.
    pub targets: Vec<TargetId>,
    /// The heuristic that produced the selection.
    pub kind: ChooserKind,
    /// The selector's round-robin cursor *before* this decision (slot
    /// units) — enough to replay a round-robin choice exactly.
    pub cursor_before: u64,
}

/// The target selector: heuristic + management-service state.
#[derive(Debug, Clone)]
pub struct TargetSelector {
    kind: ChooserKind,
    /// Registration order of targets at the management service; the
    /// round-robin window slides over this.
    order: Vec<TargetId>,
    /// Round-robin cursor in *slot* units: each file creation consumes
    /// `stripe_count` slots, exactly like BeeGFS's rotating index. Other
    /// tenants' creations advance it too (see `advance_cursor`).
    cursor: u64,
    /// Targets currently eligible (online). Index-aligned with flat ids.
    online: Vec<bool>,
}

/// PlaFRIM's target registration order.
///
/// Reverse-engineered from the paper's observation that the round-robin
/// heuristic with stripe count 4 always produces one of exactly two
/// allocations — `(101, 201, 202, 203)` or `(204, 102, 103, 104)`, both
/// `(1,3)` — which pins the order to
/// `[101, 201, 202, 203, 204, 102, 103, 104]` with the window advancing
/// by the stripe count on every file create.
pub fn plafrim_registration_order() -> Vec<TargetId> {
    [0u32, 4, 5, 6, 7, 1, 2, 3]
        .into_iter()
        .map(TargetId)
        .collect()
}

impl TargetSelector {
    /// A selector over the platform's targets in flat (server-major)
    /// registration order.
    pub fn new(kind: ChooserKind, platform: &Platform) -> Self {
        Self::with_order(kind, platform, platform.all_targets())
    }

    /// A selector with an explicit registration order (e.g.
    /// [`plafrim_registration_order`]).
    ///
    /// # Panics
    /// Panics if `order` is not a permutation of the platform's targets.
    pub fn with_order(kind: ChooserKind, platform: &Platform, order: Vec<TargetId>) -> Self {
        let n = platform.total_targets();
        assert_eq!(order.len(), n, "registration order must list every target");
        let mut seen = vec![false; n];
        for t in &order {
            assert!(t.index() < n, "unknown target {t} in registration order");
            assert!(
                !seen[t.index()],
                "duplicate target {t} in registration order"
            );
            seen[t.index()] = true;
        }
        TargetSelector {
            kind,
            order,
            cursor: 0,
            online: vec![true; n],
        }
    }

    /// The heuristic in use.
    pub fn kind(&self) -> ChooserKind {
        self.kind
    }

    /// Mark a target offline (excluded from future selections) or back
    /// online.
    pub fn set_online(&mut self, t: TargetId, online: bool) {
        self.online[t.index()] = online;
    }

    /// Whether a target is currently eligible.
    pub fn is_online(&self, t: TargetId) -> bool {
        self.online[t.index()]
    }

    /// Number of currently eligible targets.
    pub fn online_count(&self) -> usize {
        self.online.iter().filter(|&&o| o).count()
    }

    /// The current round-robin cursor (slot units).
    pub fn cursor(&self) -> u64 {
        self.cursor
    }

    /// Set the round-robin cursor (slot units). The `BeeGfs` facade uses
    /// this to model the unknown file-creation history between benchmark
    /// runs (§III-C protocol).
    pub fn set_cursor(&mut self, cursor: u64) {
        self.cursor = cursor;
    }

    /// Advance the cursor by `slots`, as if other tenants had created
    /// files consuming that many stripe slots.
    pub fn advance_cursor(&mut self, slots: u64) {
        self.cursor = self.cursor.wrapping_add(slots);
    }

    /// Choose targets for a new file.
    ///
    /// Fails with [`StripeError::Policy`] ([`PolicyError::NoTargetsAvailable`])
    /// when *every* target is offline, and with
    /// [`StripeError::NotEnoughTargets`] when some are online but fewer
    /// than `pattern.stripe_count`; the cursor is left untouched in
    /// either case.
    pub fn choose(
        &mut self,
        platform: &Platform,
        pattern: StripePattern,
        rng: &mut StreamRng,
    ) -> Result<Vec<TargetId>, StripeError> {
        self.decide(platform, pattern, rng).map(|d| d.targets)
    }

    /// Choose targets for a new file, returning the full
    /// [`PlacementDecision`] (targets + replay metadata).
    ///
    /// Same failure modes as [`TargetSelector::choose`].
    pub fn decide(
        &mut self,
        platform: &Platform,
        pattern: StripePattern,
        rng: &mut StreamRng,
    ) -> Result<PlacementDecision, StripeError> {
        let want = pattern.stripe_count as usize;
        if self.online_count() == 0 {
            // An all-offline pool is a policy failure, not a sizing
            // problem: no stripe width could succeed, and the round-robin
            // heuristic would otherwise divide by an empty pool.
            return Err(PolicyError::NoTargetsAvailable.into());
        }
        if want > self.online_count() {
            return Err(StripeError::NotEnoughTargets {
                wanted: pattern.stripe_count,
                online: self.online_count(),
            });
        }
        let chosen = match self.kind {
            ChooserKind::RoundRobin => self.choose_round_robin(want),
            ChooserKind::Random => self.choose_random(want, rng),
            ChooserKind::Balanced => self.choose_balanced(platform, want, rng),
        };
        let cursor_before = self.cursor;
        self.cursor = self.cursor.wrapping_add(want as u64);
        debug_assert_eq!(chosen.len(), want);
        Ok(PlacementDecision {
            targets: chosen,
            kind: self.kind,
            cursor_before,
        })
    }

    fn choose_round_robin(&self, want: usize) -> Vec<TargetId> {
        // The window slides by `stripe_count` per created file, over the
        // *online* targets in registration order.
        let pool: Vec<TargetId> = self
            .order
            .iter()
            .copied()
            .filter(|t| self.online[t.index()])
            .collect();
        let n = pool.len();
        let offset = (self.cursor % n as u64) as usize;
        (0..want).map(|k| pool[(offset + k) % n]).collect()
    }

    fn choose_random(&self, want: usize, rng: &mut StreamRng) -> Vec<TargetId> {
        let pool: Vec<TargetId> = (0..self.online.len())
            .filter(|&i| self.online[i])
            .map(|i| TargetId(i as u32))
            .collect();
        sample_without_replacement(pool.len(), want, rng)
            .into_iter()
            .map(|i| pool[i])
            .collect()
    }

    fn choose_balanced(
        &self,
        platform: &Platform,
        want: usize,
        rng: &mut StreamRng,
    ) -> Vec<TargetId> {
        // Distribute `want` across servers as evenly as the online slot
        // counts allow: repeatedly grant one slot to the eligible server
        // with the fewest granted so far (ties broken randomly).
        let m = platform.server_count();
        let online_per_server: Vec<Vec<TargetId>> = (0..m)
            .map(|s| {
                platform
                    .targets_of(ServerId(s as u32))
                    .into_iter()
                    .filter(|t| self.online[t.index()])
                    .collect()
            })
            .collect();
        let mut granted = vec![0usize; m];
        for _ in 0..want {
            let candidates: Vec<usize> = (0..m)
                .filter(|&s| granted[s] < online_per_server[s].len())
                .collect();
            let least = candidates
                .iter()
                .map(|&s| granted[s])
                .min()
                .expect("selector invariant: enough online targets");
            let tied: Vec<usize> = candidates
                .into_iter()
                .filter(|&s| granted[s] == least)
                .collect();
            let pick = tied[rng.gen_range(0..tied.len())];
            granted[pick] += 1;
        }
        let mut chosen = Vec::with_capacity(want);
        for (s, &g) in granted.iter().enumerate() {
            if g == 0 {
                continue;
            }
            let slots = sample_without_replacement(online_per_server[s].len(), g, rng);
            chosen.extend(slots.into_iter().map(|i| online_per_server[s][i]));
        }
        chosen
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::alloc::Allocation;
    use cluster::presets;
    use simcore::rng::RngFactory;
    use std::collections::{HashMap, HashSet};

    fn rng(i: u64) -> StreamRng {
        RngFactory::new(77).stream("chooser-tests", i)
    }

    fn pattern(s: u32) -> StripePattern {
        StripePattern::new(s, 512 * 1024)
    }

    /// Randomize a cursor the way the `BeeGfs` facade does between runs:
    /// an unknown mix of default-stripe (4) creations by other tenants
    /// and own-config (stripe) creations by earlier repetitions.
    fn history_cursor(stripe: u32, r: &mut StreamRng) -> u64 {
        let a = u64::from(r.gen::<u16>());
        let b = u64::from(r.gen::<u16>());
        4 * a + u64::from(stripe) * b
    }

    /// Run the chooser many times with a randomized cursor and collect the
    /// distribution of `(min,max)` labels.
    fn label_distribution(kind: ChooserKind, stripe: u32, reps: usize) -> HashMap<String, usize> {
        let p = presets::plafrim_ethernet();
        let mut counts = HashMap::new();
        let mut r = rng(u64::from(stripe));
        for _ in 0..reps {
            let mut sel = TargetSelector::with_order(kind, &p, plafrim_registration_order());
            let c = history_cursor(stripe, &mut r);
            sel.set_cursor(c);
            let chosen = sel.choose(&p, pattern(stripe), &mut r).unwrap();
            let a = Allocation::classify(&p, &chosen);
            *counts.entry(a.label()).or_insert(0) += 1;
        }
        counts
    }

    #[test]
    fn round_robin_stripe4_is_always_one_three() {
        // §IV-C1: "the round-robin heuristic used in PlaFRIM always makes
        // a (1,3) allocation" for stripe count 4 — and only the two
        // specific target sets are ever produced.
        let p = presets::plafrim_ethernet();
        let mut r = rng(1);
        let mut seen_sets = HashSet::new();
        for _ in 0..200 {
            let mut sel = TargetSelector::with_order(
                ChooserKind::RoundRobin,
                &p,
                plafrim_registration_order(),
            );
            let c = history_cursor(4, &mut r);
            sel.set_cursor(c);
            let mut chosen = sel.choose(&p, pattern(4), &mut r).unwrap();
            assert_eq!(Allocation::classify(&p, &chosen).label(), "(1,3)");
            chosen.sort();
            seen_sets.insert(chosen);
        }
        assert_eq!(seen_sets.len(), 2, "exactly two stripe-4 allocations exist");
    }

    #[test]
    fn round_robin_bimodal_stripe_counts() {
        // §IV-C1: stripe counts 2, 3, 5 and 6 show bi-modal allocations.
        for (stripe, expected) in [
            (2u32, ["(1,1)", "(0,2)"]),
            (3, ["(1,2)", "(0,3)"]),
            (5, ["(1,4)", "(2,3)"]),
            (6, ["(2,4)", "(3,3)"]),
        ] {
            let dist = label_distribution(ChooserKind::RoundRobin, stripe, 400);
            assert_eq!(dist.len(), 2, "stripe {stripe}: {dist:?}");
            for label in expected {
                assert!(
                    dist.contains_key(label),
                    "stripe {stripe} missing {label}: {dist:?}"
                );
            }
        }
    }

    #[test]
    fn round_robin_unimodal_stripe_counts() {
        for (stripe, expected) in [(1u32, "(0,1)"), (7, "(3,4)"), (8, "(4,4)")] {
            let dist = label_distribution(ChooserKind::RoundRobin, stripe, 200);
            assert_eq!(dist.len(), 1, "stripe {stripe}: {dist:?}");
            assert!(dist.contains_key(expected), "stripe {stripe}: {dist:?}");
        }
    }

    #[test]
    fn round_robin_never_produces_two_two_with_stripe_four() {
        // §IV-C1: "(2,2) never happened in 100 repetitions".
        let dist = label_distribution(ChooserKind::RoundRobin, 4, 400);
        assert!(!dist.contains_key("(2,2)"), "{dist:?}");
    }

    #[test]
    fn random_chooser_produces_two_two_sometimes() {
        // With random selection the balanced (2,2) becomes reachable
        // (§IV-C1 discusses exactly this what-if).
        let dist = label_distribution(ChooserKind::Random, 4, 600);
        assert!(dist.contains_key("(2,2)"), "{dist:?}");
        assert!(dist.contains_key("(1,3)"), "{dist:?}");
        assert!(dist.contains_key("(0,4)"), "{dist:?}");
    }

    #[test]
    fn random_chooser_uniform_over_targets() {
        let p = presets::plafrim_ethernet();
        let mut r = rng(9);
        let mut sel = TargetSelector::new(ChooserKind::Random, &p);
        let mut counts = [0usize; 8];
        let reps = 4000;
        for _ in 0..reps {
            for t in sel.choose(&p, pattern(2), &mut r).unwrap() {
                counts[t.index()] += 1;
            }
        }
        // Each target expected reps * 2/8 = 1000.
        for &c in &counts {
            assert!((850..1150).contains(&c), "count {c} outside band");
        }
    }

    #[test]
    fn balanced_chooser_always_balanced_for_even_counts() {
        let p = presets::plafrim_ethernet();
        let mut r = rng(10);
        for stripe in [2u32, 4, 6, 8] {
            for _ in 0..100 {
                let mut sel = TargetSelector::new(ChooserKind::Balanced, &p);
                let chosen = sel.choose(&p, pattern(stripe), &mut r).unwrap();
                let a = Allocation::classify(&p, &chosen);
                assert!(a.is_balanced(), "stripe {stripe}: {}", a.label());
            }
        }
    }

    #[test]
    fn balanced_chooser_off_by_one_for_odd_counts() {
        let p = presets::plafrim_ethernet();
        let mut r = rng(11);
        for stripe in [1u32, 3, 5, 7] {
            let mut sel = TargetSelector::new(ChooserKind::Balanced, &p);
            let chosen = sel.choose(&p, pattern(stripe), &mut r).unwrap();
            let (min, max) = Allocation::classify(&p, &chosen).min_max();
            assert!(max - min <= 1, "stripe {stripe}: ({min},{max})");
        }
    }

    #[test]
    fn offline_targets_are_never_chosen() {
        let p = presets::plafrim_ethernet();
        let mut r = rng(12);
        for kind in [
            ChooserKind::RoundRobin,
            ChooserKind::Random,
            ChooserKind::Balanced,
        ] {
            let mut sel = TargetSelector::new(kind, &p);
            sel.set_online(TargetId(2), false);
            sel.set_online(TargetId(5), false);
            assert_eq!(sel.online_count(), 6);
            for _ in 0..50 {
                let chosen = sel.choose(&p, pattern(4), &mut r).unwrap();
                assert!(!chosen.contains(&TargetId(2)), "{kind:?}");
                assert!(!chosen.contains(&TargetId(5)), "{kind:?}");
            }
        }
    }

    #[test]
    fn overcommitting_online_pool_is_a_typed_error() {
        let p = presets::plafrim_ethernet();
        let mut r = rng(13);
        let mut sel = TargetSelector::new(ChooserKind::Random, &p);
        sel.set_online(TargetId(0), false);
        sel.set_online(TargetId(1), false);
        let before = sel.cursor();
        let err = sel.choose(&p, pattern(7), &mut r).unwrap_err();
        assert_eq!(
            err,
            StripeError::NotEnoughTargets {
                wanted: 7,
                online: 6
            }
        );
        assert!(err.to_string().contains("only 6 online"));
        assert_eq!(
            sel.cursor(),
            before,
            "failed choose must not advance the cursor"
        );
    }

    #[test]
    fn all_offline_pool_is_a_policy_error_not_an_empty_allocation() {
        // Regression: with every target offline, RoundRobin used to panic
        // (cursor % 0) and Random/Balanced silently returned an empty
        // allocation for stripe count 0. All three must now fail with the
        // typed policy error, whatever the requested width.
        use crate::error::PolicyError;
        let p = presets::plafrim_ethernet();
        let mut r = rng(16);
        for kind in [
            ChooserKind::RoundRobin,
            ChooserKind::Random,
            ChooserKind::Balanced,
        ] {
            let mut sel = TargetSelector::new(kind, &p);
            for i in 0..8 {
                sel.set_online(TargetId(i), false);
            }
            let before = sel.cursor();
            for stripe in [0u32, 1, 4] {
                let err = sel
                    .choose(
                        &p,
                        StripePattern {
                            stripe_count: stripe,
                            ..pattern(4)
                        },
                        &mut r,
                    )
                    .unwrap_err();
                assert_eq!(
                    err,
                    StripeError::Policy(PolicyError::NoTargetsAvailable),
                    "{kind:?} stripe {stripe}"
                );
            }
            assert_eq!(sel.cursor(), before, "failed choose must not advance");
        }
    }

    #[test]
    fn decide_reports_replayable_metadata() {
        let p = presets::plafrim_ethernet();
        let mut r = rng(17);
        let mut sel =
            TargetSelector::with_order(ChooserKind::RoundRobin, &p, plafrim_registration_order());
        sel.set_cursor(6);
        let d = sel.decide(&p, pattern(4), &mut r).unwrap();
        assert_eq!(d.kind, ChooserKind::RoundRobin);
        assert_eq!(d.cursor_before, 6);
        assert_eq!(d.targets.len(), 4);
        assert_eq!(sel.cursor(), 10);
        // decide() and choose() are the same decision.
        let mut sel2 =
            TargetSelector::with_order(ChooserKind::RoundRobin, &p, plafrim_registration_order());
        sel2.set_cursor(6);
        let mut r2 = rng(17);
        assert_eq!(sel2.choose(&p, pattern(4), &mut r2).unwrap(), d.targets);
    }

    #[test]
    fn choices_contain_no_duplicates() {
        let p = presets::plafrim_ethernet();
        let mut r = rng(14);
        for kind in [
            ChooserKind::RoundRobin,
            ChooserKind::Random,
            ChooserKind::Balanced,
        ] {
            let mut sel = TargetSelector::new(kind, &p);
            for stripe in 1..=8u32 {
                let chosen = sel.choose(&p, pattern(stripe), &mut r).unwrap();
                let set: HashSet<_> = chosen.iter().collect();
                assert_eq!(set.len(), stripe as usize, "{kind:?} stripe {stripe}");
            }
        }
    }

    #[test]
    fn consecutive_rr_creates_advance_the_window() {
        let p = presets::plafrim_ethernet();
        let mut r = rng(15);
        let mut sel =
            TargetSelector::with_order(ChooserKind::RoundRobin, &p, plafrim_registration_order());
        let first = sel.choose(&p, pattern(4), &mut r).unwrap();
        let second = sel.choose(&p, pattern(4), &mut r).unwrap();
        assert_ne!(first, second, "window must advance between creates");
        let third = sel.choose(&p, pattern(4), &mut r).unwrap();
        assert_eq!(first, third, "8 targets / stripe 4 cycles with period 2");
    }

    #[test]
    #[should_panic(expected = "duplicate target")]
    fn bad_registration_order_rejected() {
        let p = presets::plafrim_ethernet();
        let mut order = plafrim_registration_order();
        order[1] = order[0];
        let _ = TargetSelector::with_order(ChooserKind::RoundRobin, &p, order);
    }
}
