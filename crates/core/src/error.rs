//! Typed errors for the BeeGFS model's public API.
//!
//! Invalid-but-representable inputs (an out-of-range degradation factor,
//! striping over an offline target, asking for more targets than are
//! online) surface as values instead of panics, so experiment drivers and
//! the `ior` runner can react — retry, skip, or report — rather than
//! abort the whole process.

use crate::services::TargetState;
use cluster::TargetId;
use std::fmt;

/// A target-state transition was rejected.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum StateError {
    /// `Degraded(f)` requires a finite factor in `(0, 1]`; zero would be
    /// a selectable target that can never drain a byte (a silent stall),
    /// and anything above one is faster-than-healthy.
    InvalidDegradedFactor(f64),
    /// The target id does not exist in this deployment.
    UnknownTarget(TargetId),
}

impl fmt::Display for StateError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StateError::InvalidDegradedFactor(x) => write!(
                f,
                "invalid degraded speed factor {x}: must be finite and in (0, 1]"
            ),
            StateError::UnknownTarget(t) => write!(f, "unknown target {t}"),
        }
    }
}

impl std::error::Error for StateError {}

/// File creation / target selection failed.
#[derive(Debug, Clone, PartialEq)]
pub enum StripeError {
    /// The directory's stripe count exceeds the number of online targets.
    NotEnoughTargets {
        /// Stripe width the directory configuration asked for.
        wanted: u32,
        /// Targets currently registered as selectable.
        online: usize,
    },
    /// A pinned target list names a target that is not selectable.
    OfflineTarget(TargetId),
    /// A pinned target list was empty.
    EmptyTargetList,
}

impl fmt::Display for StripeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StripeError::NotEnoughTargets { wanted, online } => write!(
                f,
                "cannot stripe over {wanted} targets: only {online} online"
            ),
            StripeError::OfflineTarget(t) => {
                write!(f, "cannot stripe over offline target {t}")
            }
            StripeError::EmptyTargetList => write!(f, "cannot stripe over an empty target list"),
        }
    }
}

impl std::error::Error for StripeError {}

/// Validate a [`TargetState`], rejecting degradation factors that are
/// NaN, non-positive, or above one.
///
/// `Degraded(0.0)` is the dangerous case: it stays *selectable* (BeeGFS
/// still allocates new files to a degraded target) but moves no bytes, so
/// without this check a run over such a target stalls forever.
pub fn validate_state(state: TargetState) -> Result<(), StateError> {
    match state {
        TargetState::Degraded(f) if !(f.is_finite() && f > 0.0 && f <= 1.0) => {
            Err(StateError::InvalidDegradedFactor(f))
        }
        _ => Ok(()),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn degraded_factor_validation() {
        assert!(validate_state(TargetState::Online).is_ok());
        assert!(validate_state(TargetState::Offline).is_ok());
        assert!(validate_state(TargetState::Degraded(0.5)).is_ok());
        assert!(validate_state(TargetState::Degraded(1.0)).is_ok());
        for bad in [0.0, -0.1, 1.5, f64::NAN, f64::INFINITY] {
            assert!(
                validate_state(TargetState::Degraded(bad)).is_err(),
                "Degraded({bad}) should be rejected"
            );
        }
    }

    #[test]
    fn errors_render_readably() {
        let e = StripeError::NotEnoughTargets {
            wanted: 8,
            online: 3,
        };
        assert!(e.to_string().contains("only 3 online"));
        let e = StateError::InvalidDegradedFactor(f64::NAN);
        assert!(e.to_string().contains("degraded"));
    }
}
