//! Typed errors for the BeeGFS model's public API.
//!
//! Invalid-but-representable inputs (an out-of-range degradation factor,
//! striping over an offline target, asking for more targets than are
//! online) surface as values instead of panics, so experiment drivers and
//! the `ior` runner can react — retry, skip, or report — rather than
//! abort the whole process.

use crate::services::TargetState;
use cluster::TargetId;
use std::fmt;

/// A target-state transition was rejected.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum StateError {
    /// `Degraded(f)` requires a finite factor in `(0, 1]`; zero would be
    /// a selectable target that can never drain a byte (a silent stall),
    /// and anything above one is faster-than-healthy.
    InvalidDegradedFactor(f64),
    /// The target id does not exist in this deployment.
    UnknownTarget(TargetId),
}

impl fmt::Display for StateError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StateError::InvalidDegradedFactor(x) => write!(
                f,
                "invalid degraded speed factor {x}: must be finite and in (0, 1]"
            ),
            StateError::UnknownTarget(t) => write!(f, "unknown target {t}"),
        }
    }
}

impl std::error::Error for StateError {}

/// A placement policy could not produce a decision at all.
///
/// Distinct from [`StripeError::NotEnoughTargets`] (a *sizing* problem:
/// some targets are online, just fewer than the stripe width asks for):
/// a policy error means the policy had no material to work with, so no
/// stripe width could have succeeded.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PolicyError {
    /// Every target in the pool is offline; any selection would be empty.
    NoTargetsAvailable,
}

impl fmt::Display for PolicyError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PolicyError::NoTargetsAvailable => {
                write!(f, "no targets available: every target is offline")
            }
        }
    }
}

impl std::error::Error for PolicyError {}

/// File creation / target selection failed.
#[derive(Debug, Clone, PartialEq)]
pub enum StripeError {
    /// The directory's stripe count exceeds the number of online targets.
    NotEnoughTargets {
        /// Stripe width the directory configuration asked for.
        wanted: u32,
        /// Targets currently registered as selectable.
        online: usize,
    },
    /// A pinned target list names a target that is not selectable.
    OfflineTarget(TargetId),
    /// A pinned target list was empty.
    EmptyTargetList,
    /// The selection policy itself failed (e.g. an all-offline pool).
    Policy(PolicyError),
}

impl fmt::Display for StripeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StripeError::NotEnoughTargets { wanted, online } => write!(
                f,
                "cannot stripe over {wanted} targets: only {online} online"
            ),
            StripeError::OfflineTarget(t) => {
                write!(f, "cannot stripe over offline target {t}")
            }
            StripeError::EmptyTargetList => write!(f, "cannot stripe over an empty target list"),
            StripeError::Policy(e) => write!(f, "placement policy failed: {e}"),
        }
    }
}

impl std::error::Error for StripeError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            StripeError::Policy(e) => Some(e),
            _ => None,
        }
    }
}

impl From<PolicyError> for StripeError {
    fn from(e: PolicyError) -> Self {
        StripeError::Policy(e)
    }
}

/// A mid-flight restripe of an open file was rejected.
///
/// Restriping changes where *not-yet-issued* chunks land; it never
/// rewrites bytes already drained onto the old stripe set. The checks
/// here mirror [`StripeError`] for pinned creation, plus the progress
/// invariant that makes the drain/redirect split well defined.
#[derive(Debug, Clone, PartialEq)]
pub enum RestripeError {
    /// The new target list was empty.
    EmptyTargetList,
    /// The new target list names a target that is not selectable — the
    /// fault-timeline interaction: you cannot restripe onto a target the
    /// fault plan has already evicted.
    OfflineTarget(TargetId),
    /// The claimed issued-byte count exceeds the file's total size, so
    /// there is nothing left to redirect.
    InvalidProgress {
        /// Bytes claimed as already issued on the old stripe set.
        issued: u64,
        /// The file's total size in bytes.
        total: u64,
    },
}

impl fmt::Display for RestripeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RestripeError::EmptyTargetList => {
                write!(f, "cannot restripe onto an empty target list")
            }
            RestripeError::OfflineTarget(t) => {
                write!(f, "cannot restripe onto offline target {t}")
            }
            RestripeError::InvalidProgress { issued, total } => write!(
                f,
                "invalid restripe progress: {issued} bytes issued of a {total}-byte file"
            ),
        }
    }
}

impl std::error::Error for RestripeError {}

/// Validate a [`TargetState`], rejecting degradation factors that are
/// NaN, non-positive, or above one.
///
/// `Degraded(0.0)` is the dangerous case: it stays *selectable* (BeeGFS
/// still allocates new files to a degraded target) but moves no bytes, so
/// without this check a run over such a target stalls forever.
pub fn validate_state(state: TargetState) -> Result<(), StateError> {
    match state {
        TargetState::Degraded(f) if !(f.is_finite() && f > 0.0 && f <= 1.0) => {
            Err(StateError::InvalidDegradedFactor(f))
        }
        _ => Ok(()),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn degraded_factor_validation() {
        assert!(validate_state(TargetState::Online).is_ok());
        assert!(validate_state(TargetState::Offline).is_ok());
        assert!(validate_state(TargetState::Degraded(0.5)).is_ok());
        assert!(validate_state(TargetState::Degraded(1.0)).is_ok());
        for bad in [0.0, -0.1, 1.5, f64::NAN, f64::INFINITY] {
            assert!(
                validate_state(TargetState::Degraded(bad)).is_err(),
                "Degraded({bad}) should be rejected"
            );
        }
    }

    #[test]
    fn errors_render_readably() {
        let e = StripeError::NotEnoughTargets {
            wanted: 8,
            online: 3,
        };
        assert!(e.to_string().contains("only 3 online"));
        let e = StateError::InvalidDegradedFactor(f64::NAN);
        assert!(e.to_string().contains("degraded"));
        let e = StripeError::from(PolicyError::NoTargetsAvailable);
        assert!(e.to_string().contains("no targets available"));
        let e = RestripeError::OfflineTarget(TargetId(3));
        assert!(e.to_string().contains("restripe"));
        let e = RestripeError::InvalidProgress {
            issued: 9,
            total: 4,
        };
        assert!(e.to_string().contains("9 bytes issued"));
        assert!(RestripeError::EmptyTargetList.to_string().contains("empty"));
    }

    #[test]
    fn policy_error_is_the_source_of_its_stripe_error() {
        use std::error::Error;
        let e = StripeError::Policy(PolicyError::NoTargetsAvailable);
        let src = e.source().expect("policy error has a source");
        assert_eq!(src.to_string(), PolicyError::NoTargetsAvailable.to_string());
        assert!(StripeError::EmptyTargetList.source().is_none());
    }
}
