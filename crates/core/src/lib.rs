//! # beegfs-core — a BeeGFS parallel-file-system model
//!
//! The paper's object of study, implemented as a simulation model:
//!
//! * [`stripe`] — per-directory striping (stripe count + chunk size) and
//!   the byte-range → target math;
//! * [`chooser`] — the target-selection heuristics (round-robin as
//!   deployed on PlaFRIM, random as BeeGFS defaults to, and the balanced
//!   heuristic the paper's lesson 4 recommends);
//! * [`alloc`] — the paper's `(min, max)` allocation notation and balance
//!   classification;
//! * [`services`] — management service (component registry, target
//!   liveness, heartbeat detection delay) and metadata service (MDS/MDT
//!   cost model);
//! * [`faults`] — deterministic mid-run fault timelines ([`FaultPlan`])
//!   applied by the `ior` runner as scheduled capacity changes;
//! * [`error`] — typed errors for invalid-but-representable inputs
//!   (bad degradation factors, striping over offline targets);
//! * [`file`](mod@file) — striped file handles;
//! * [`system`] — the [`system::BeeGfs`] facade tying it all together;
//! * [`analytic`] — the closed-form bottleneck capacity model used to
//!   cross-validate the discrete-event simulation (the formal version of
//!   the paper's Figs. 3 and 9 reasoning);
//! * [`tuning`] — a stripe-count auto-tuner built on the analytic model
//!   (the paper's §VI "stripe count tuning" future work).
//!
//! The actual movement of bytes through nodes, links and devices is
//! simulated by the `ior` crate, which combines a [`system::BeeGfs`]
//! with a `cluster::Fabric` flow network.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod alloc;
pub mod analytic;
pub mod chooser;
pub mod error;
pub mod faults;
pub mod file;
pub mod services;
pub mod stripe;
pub mod system;
pub mod tuning;

pub use alloc::Allocation;
pub use chooser::{plafrim_registration_order, ChooserKind, PlacementDecision, TargetSelector};
pub use error::{PolicyError, RestripeError, StateError, StripeError};
pub use faults::{FaultEvent, FaultKind, FaultPlan, FaultPlanError, SLOW_DRIFT_STEPS};
pub use file::{restripe_split, FileHandle, RestripeSplit};
pub use services::{ManagementService, MetaService, TargetState};
pub use stripe::StripePattern;
pub use system::{BeeGfs, DirConfig};
pub use tuning::{recommend, Recommendation};
