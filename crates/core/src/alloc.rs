//! OST allocation classification — the paper's `(min, max)` notation.
//!
//! §IV-C represents a target selection by the number of targets chosen on
//! each storage server, reduced to `(min, max)` for the two-server
//! PlaFRIM deployment (Fig. 7): e.g. one target on one server and three
//! on the other is `(1,3)`. Balance — the `min/max` ratio — turns out to
//! be the dominant performance factor in the network-bound scenario
//! (Fig. 8, lesson 4).

use cluster::{Platform, TargetId};
use serde::{Deserialize, Serialize};
use std::fmt;

/// A target allocation summarized by per-server counts.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Allocation {
    /// Targets chosen per server, in server order.
    pub per_server: Vec<usize>,
}

impl Allocation {
    /// Classify a selection against a platform layout.
    pub fn classify(platform: &Platform, selection: &[TargetId]) -> Self {
        Allocation {
            per_server: platform.per_server_counts(selection),
        }
    }

    /// Total number of targets selected.
    pub fn total(&self) -> usize {
        self.per_server.iter().sum()
    }

    /// The paper's `(min, max)` pair. For deployments with more than two
    /// servers this is the extreme pair over all servers *with the
    /// convention of the paper*: min and max of the per-server counts,
    /// ignoring servers with zero targets only when some server has any
    /// (the two-server case reduces to the paper's exact notation).
    pub fn min_max(&self) -> (usize, usize) {
        let min = self.per_server.iter().copied().min().unwrap_or(0);
        let max = self.per_server.iter().copied().max().unwrap_or(0);
        (min, max)
    }

    /// Balance ratio `min/max` in `[0, 1]`; 1 is perfectly balanced.
    /// Returns 0 for an empty allocation.
    pub fn balance(&self) -> f64 {
        let (min, max) = self.min_max();
        if max == 0 {
            0.0
        } else {
            min as f64 / max as f64
        }
    }

    /// True when every server holds the same number of selected targets.
    pub fn is_balanced(&self) -> bool {
        let (min, max) = self.min_max();
        min == max
    }

    /// The paper's label, e.g. `(1,3)`.
    pub fn label(&self) -> String {
        let (min, max) = self.min_max();
        format!("({min},{max})")
    }
}

impl fmt::Display for Allocation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.label())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cluster::presets;

    fn t(ids: &[u32]) -> Vec<TargetId> {
        ids.iter().map(|&i| TargetId(i)).collect()
    }

    #[test]
    fn paper_example_one_three() {
        // Fig. 7: one target on the first server, three on the second.
        let p = presets::plafrim_ethernet();
        let a = Allocation::classify(&p, &t(&[0, 4, 5, 6]));
        assert_eq!(a.per_server, vec![1, 3]);
        assert_eq!(a.min_max(), (1, 3));
        assert_eq!(a.label(), "(1,3)");
        assert!(!a.is_balanced());
        assert!((a.balance() - 1.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn balanced_allocations() {
        let p = presets::plafrim_ethernet();
        for sel in [
            t(&[0, 4]),
            t(&[0, 1, 2, 4, 5, 6]),
            t(&[0, 1, 2, 3, 4, 5, 6, 7]),
        ] {
            let a = Allocation::classify(&p, &sel);
            assert!(a.is_balanced(), "{}", a.label());
            assert_eq!(a.balance(), 1.0);
        }
    }

    #[test]
    fn single_server_allocations_have_zero_balance() {
        let p = presets::plafrim_ethernet();
        let a = Allocation::classify(&p, &t(&[0, 1, 2]));
        assert_eq!(a.label(), "(0,3)");
        assert_eq!(a.balance(), 0.0);
    }

    #[test]
    fn total_counts_selection_size() {
        let p = presets::plafrim_ethernet();
        let a = Allocation::classify(&p, &t(&[0, 1, 4, 5, 6]));
        assert_eq!(a.total(), 5);
        assert_eq!(a.label(), "(2,3)");
    }

    #[test]
    fn empty_allocation() {
        let p = presets::plafrim_ethernet();
        let a = Allocation::classify(&p, &[]);
        assert_eq!(a.min_max(), (0, 0));
        assert_eq!(a.balance(), 0.0);
        assert_eq!(a.total(), 0);
    }

    #[test]
    fn twelve_server_platform_classifies() {
        let p = presets::catalyst_like();
        // Two targets on server 0, none elsewhere.
        let a = Allocation::classify(&p, &t(&[0, 1]));
        assert_eq!(a.per_server.len(), 12);
        assert_eq!(a.min_max(), (0, 2));
    }
}
