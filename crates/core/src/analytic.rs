//! Closed-form capacity model.
//!
//! The paper reasons about its results with a simple bottleneck argument
//! (Figs. 3 and 9): the aggregate write bandwidth of a synchronized N-1
//! workload is the minimum of the client-side injection capacity and, on
//! the storage side, the *drain rate* implied by the slowest server —
//! each server must absorb a share of the data proportional to its share
//! of the selected targets, at a rate bounded by its link, its backend,
//! and the summed concurrency-limited throughput of its selected OSTs.
//!
//! This module implements that argument as a closed formula. It serves
//! two purposes:
//!
//! 1. **Cross-validation** — with noise disabled, the discrete-event
//!    simulation must agree with the formula wherever the formula's
//!    assumptions hold (steady state, simultaneous completion); tests and
//!    benches assert this.
//! 2. **Fast what-if queries** — tuning tools can evaluate thousands of
//!    allocations without running the DES.
//!
//! The formula deliberately ignores end-of-run phase transitions (when an
//! underloaded server finishes early, freed *client* capacity can speed
//! up the remaining flows). The DES models those, so its bandwidth is
//! never *below* the formula by more than the float tolerance, and the
//! two agree exactly when the allocation is balanced.

use cluster::{Platform, TargetId};
use simcore::units::Bandwidth;

/// Closed-form prediction of aggregate write bandwidth.
///
/// `selection` is the file's target list; `n_nodes`/`ppn` describe the
/// writing application. Returns the aggregate bandwidth over the whole
/// run (total bytes / makespan) under the bottleneck argument.
///
/// ```
/// use beegfs_core::analytic::predict_bandwidth;
/// use cluster::{presets, TargetId};
///
/// // Scenario 1, balanced (1,1): both 1100 MiB/s server links busy.
/// let p = presets::plafrim_ethernet();
/// let bw = predict_bandwidth(&p, 8, 8, &[TargetId(0), TargetId(4)]);
/// assert!((bw.mib_per_sec() - 2200.0).abs() < 1.0);
/// ```
///
/// # Panics
/// Panics if the selection is empty or `n_nodes`/`ppn` is zero.
pub fn predict_bandwidth(
    platform: &Platform,
    n_nodes: usize,
    ppn: u32,
    selection: &[TargetId],
) -> Bandwidth {
    assert!(!selection.is_empty(), "empty target selection");
    assert!(n_nodes > 0 && ppn > 0, "need nodes and processes");

    let s_total = selection.len() as f64;

    // --- client side ---------------------------------------------------
    let per_node = platform
        .compute
        .injection_cap(ppn)
        .bytes_per_sec()
        .min(platform.compute.nic.bytes_per_sec());
    let client = per_node * n_nodes as f64;
    let switch = platform.network.switch_capacity.bytes_per_sec();

    // --- storage side ---------------------------------------------------
    // Queue depth per selected OST: every node spreads its write-behind
    // window over the stripe targets.
    let q_per_ost = n_nodes as f64 * platform.compute.node_window / s_total;

    // Drain-rate bound: server i receives fraction (count_i / s_total) of
    // the bytes and absorbs them at rate_i; the makespan is governed by
    // max_i (frac_i / rate_i).
    let counts = platform.per_server_counts(selection);
    let mut worst_drain: f64 = f64::INFINITY;
    for (i, &count) in counts.iter().enumerate() {
        if count == 0 {
            continue;
        }
        let server = &platform.servers[i];
        let ost_sum: f64 = platform
            .targets_of(cluster::ServerId(i as u32))
            .into_iter()
            .filter(|t| selection.contains(t))
            .map(|t| {
                let profile = platform.ost_profile(t);
                profile.capacity_model().capacity_at_depth(q_per_ost)
            })
            .sum();
        let rate = platform
            .network
            .server_link
            .bytes_per_sec()
            .min(server.backend.cap().bytes_per_sec())
            .min(ost_sum);
        let frac = count as f64 / s_total;
        worst_drain = worst_drain.min(rate / frac);
    }

    Bandwidth::from_bytes_per_sec(client.min(switch).min(worst_drain))
}

/// Which resource class limits the predicted bandwidth.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Bottleneck {
    /// Client injection (nodes x per-node cap).
    Client,
    /// The switch fabric.
    Switch,
    /// A storage server's link/backend/targets.
    Storage,
}

/// Like [`predict_bandwidth`], also reporting the binding constraint.
pub fn predict_with_bottleneck(
    platform: &Platform,
    n_nodes: usize,
    ppn: u32,
    selection: &[TargetId],
) -> (Bandwidth, Bottleneck) {
    let bw = predict_bandwidth(platform, n_nodes, ppn, selection);
    let per_node = platform
        .compute
        .injection_cap(ppn)
        .bytes_per_sec()
        .min(platform.compute.nic.bytes_per_sec());
    let client = per_node * n_nodes as f64;
    let switch = platform.network.switch_capacity.bytes_per_sec();
    let v = bw.bytes_per_sec();
    let b = if (v - client).abs() < 1e-6 {
        Bottleneck::Client
    } else if (v - switch).abs() < 1e-6 {
        Bottleneck::Switch
    } else {
        Bottleneck::Storage
    };
    (bw, b)
}

#[cfg(test)]
mod tests {
    use super::*;
    use cluster::presets;

    fn t(ids: &[u32]) -> Vec<TargetId> {
        ids.iter().map(|&i| TargetId(i)).collect()
    }

    #[test]
    fn scenario1_balanced_reaches_two_links() {
        // (1,1): both server links busy -> ~2 x 1100 MiB/s.
        let p = presets::plafrim_ethernet();
        let bw = predict_bandwidth(&p, 8, 8, &t(&[0, 4]));
        assert!((bw.mib_per_sec() - 2200.0).abs() < 1.0, "{bw}");
    }

    #[test]
    fn scenario1_balance_classes_match_paper_fig8() {
        // Lesson 4: performance depends on min/max, not the count.
        let p = presets::plafrim_ethernet();
        let one_server: Vec<f64> = [t(&[4]), t(&[4, 5]), t(&[4, 5, 6])]
            .iter()
            .map(|sel| predict_bandwidth(&p, 8, 8, sel).mib_per_sec())
            .collect();
        assert!((one_server[0] - one_server[1]).abs() < 1.0);
        assert!((one_server[1] - one_server[2]).abs() < 1.0);
        assert!((one_server[0] - 1100.0).abs() < 1.0);

        let b13 = predict_bandwidth(&p, 8, 8, &t(&[0, 4, 5, 6])).mib_per_sec();
        assert!((b13 - 4.0 / 3.0 * 1100.0).abs() < 2.0, "{b13}");

        let b12 = predict_bandwidth(&p, 8, 8, &t(&[0, 4, 5])).mib_per_sec();
        let b24 = predict_bandwidth(&p, 8, 8, &t(&[0, 1, 4, 5, 6, 7])).mib_per_sec();
        assert!((b12 - b24).abs() < 2.0, "(1,2) {b12} vs (2,4) {b24}");

        let b33 = predict_bandwidth(&p, 8, 8, &t(&[0, 1, 2, 4, 5, 6])).mib_per_sec();
        let b44 = predict_bandwidth(&p, 8, 8, &t(&[0, 1, 2, 3, 4, 5, 6, 7])).mib_per_sec();
        assert!((b33 - 2200.0).abs() < 2.0);
        assert!((b44 - 2200.0).abs() < 2.0);
    }

    #[test]
    fn scenario1_lesson4_49_percent_gain() {
        // "(3,3) increases bandwidth by more than 49%" over (1,3).
        let p = presets::plafrim_ethernet();
        let b13 = predict_bandwidth(&p, 8, 8, &t(&[0, 4, 5, 6])).mib_per_sec();
        let b33 = predict_bandwidth(&p, 8, 8, &t(&[0, 1, 2, 4, 5, 6])).mib_per_sec();
        let gain = (b33 - b13) / b13;
        assert!(gain > 0.49, "gain {gain}");
    }

    #[test]
    fn scenario1_single_node_is_client_bound() {
        let p = presets::plafrim_ethernet();
        let (bw, b) = predict_with_bottleneck(&p, 1, 8, &t(&[0, 4, 5, 6]));
        assert_eq!(b, Bottleneck::Client);
        assert!((bw.mib_per_sec() - 880.0).abs() < 1.0, "{bw}");
    }

    #[test]
    fn scenario2_bandwidth_grows_with_stripe_count() {
        // Lesson 6: in the storage-bound scenario, more OSTs = more
        // bandwidth (with enough nodes).
        let p = presets::plafrim_omnipath();
        let selections = [
            t(&[0]),
            t(&[0, 4]),
            t(&[0, 4, 5, 6]),
            t(&[0, 1, 2, 4, 5, 6]),
            t(&[0, 1, 2, 3, 4, 5, 6, 7]),
        ];
        let bws: Vec<f64> = selections
            .iter()
            .map(|sel| predict_bandwidth(&p, 32, 8, sel).mib_per_sec())
            .collect();
        assert!(bws.windows(2).all(|w| w[0] < w[1]), "not monotone: {bws:?}");
        // 1 -> 8 OSTs: paper reports >350% improvement of the mean.
        let gain = (bws[4] - bws[0]) / bws[0];
        assert!(gain > 3.0, "gain {gain}: {bws:?}");
    }

    #[test]
    fn scenario2_single_node_near_paper_value() {
        // At one node, the client cap (1730) and the low-concurrency
        // storage drain (~1700 for the (1,3) allocation) nearly coincide;
        // run noise/overheads pull the *measured* single-node mean down
        // to the paper's ~1631 MiB/s.
        let p = presets::plafrim_omnipath();
        let (bw, _) = predict_with_bottleneck(&p, 1, 8, &t(&[0, 4, 5, 6]));
        assert!(
            (1600.0..1740.0).contains(&bw.mib_per_sec()),
            "single-node prediction {bw}"
        );
        // With all eight targets the storage side opens up and the client
        // cap becomes the binding constraint.
        let (_, b8) = predict_with_bottleneck(&p, 1, 8, &t(&[0, 1, 2, 3, 4, 5, 6, 7]));
        assert_eq!(b8, Bottleneck::Client);
    }

    #[test]
    fn scenario2_more_targets_need_more_nodes() {
        // Fig. 11: the node count needed to reach peak grows with the
        // stripe count. Compare the bandwidth ratio at 4 vs 32 nodes.
        let p = presets::plafrim_omnipath();
        let s2 = t(&[0, 4]);
        let s8 = t(&[0, 1, 2, 3, 4, 5, 6, 7]);
        let r2 = predict_bandwidth(&p, 4, 8, &s2).mib_per_sec()
            / predict_bandwidth(&p, 32, 8, &s2).mib_per_sec();
        let r8 = predict_bandwidth(&p, 4, 8, &s8).mib_per_sec()
            / predict_bandwidth(&p, 32, 8, &s8).mib_per_sec();
        assert!(
            r2 > r8 + 0.05,
            "stripe 2 should be closer to its peak at 4 nodes: r2={r2:.3} r8={r8:.3}"
        );
    }

    #[test]
    fn scenario2_balanced_beats_unbalanced_mildly() {
        // Fig. 10: (3,3) ~10% above (2,4) — much milder than scenario 1.
        let p = presets::plafrim_omnipath();
        let b33 = predict_bandwidth(&p, 32, 8, &t(&[0, 1, 2, 4, 5, 6])).mib_per_sec();
        let b24 = predict_bandwidth(&p, 32, 8, &t(&[0, 1, 4, 5, 6, 7])).mib_per_sec();
        let gain = (b33 - b24) / b24;
        assert!(gain > 0.0, "balanced must win: {gain}");
        assert!(gain < 0.40, "but mildly: {gain}");
    }

    #[test]
    fn ppn_effect_is_small() {
        // Lesson 3 / Fig. 5: 16 ppn is very similar to 8 ppn (slight
        // degradation possible), because the node window is per node.
        let p = presets::plafrim_omnipath();
        let sel = t(&[0, 4, 5, 6]);
        let b8 = predict_bandwidth(&p, 16, 8, &sel).mib_per_sec();
        let b16 = predict_bandwidth(&p, 16, 16, &sel).mib_per_sec();
        let delta = (b16 - b8).abs() / b8;
        assert!(delta < 0.10, "ppn effect too large: {delta}");
    }

    #[test]
    #[should_panic(expected = "empty target selection")]
    fn empty_selection_rejected() {
        let p = presets::plafrim_ethernet();
        let _ = predict_bandwidth(&p, 1, 8, &[]);
    }
}
