//! File striping: how a byte range maps onto storage targets.
//!
//! BeeGFS stripes a file across its targets in fixed-size *chunks*
//! (PlaFRIM default: 512 KiB): chunk `i` of the file lives on target
//! `targets[i % stripe_count]`. Both the chunk size and the stripe count
//! are set **per directory** (§II) — in BeeGFS only the administrator can
//! change them, which is why the paper's default-value recommendation
//! matters so much.

use serde::{Deserialize, Serialize};

/// A directory's striping parameters.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct StripePattern {
    /// Number of storage targets each file is striped over.
    pub stripe_count: u32,
    /// Chunk ("stripe") size in bytes.
    pub chunk_size: u64,
}

impl StripePattern {
    /// PlaFRIM's deployed configuration: 4 targets, 512 KiB chunks.
    pub const PLAFRIM_DEFAULT: StripePattern = StripePattern {
        stripe_count: 4,
        chunk_size: 512 * 1024,
    };

    /// Build a pattern, validating both parameters.
    ///
    /// # Panics
    /// Panics if either parameter is zero.
    pub fn new(stripe_count: u32, chunk_size: u64) -> Self {
        assert!(stripe_count > 0, "stripe count must be positive");
        assert!(chunk_size > 0, "chunk size must be positive");
        StripePattern {
            stripe_count,
            chunk_size,
        }
    }

    /// The chunk index containing byte `offset`.
    pub fn chunk_of(&self, offset: u64) -> u64 {
        offset / self.chunk_size
    }

    /// The target *slot* (index into the file's target list) that stores
    /// byte `offset`.
    pub fn slot_of(&self, offset: u64) -> u32 {
        (self.chunk_of(offset) % u64::from(self.stripe_count)) as u32
    }

    /// Bytes each target slot receives from the contiguous range
    /// `[offset, offset + len)`. The returned vector has `stripe_count`
    /// entries and sums exactly to `len`.
    pub fn bytes_per_slot(&self, offset: u64, len: u64) -> Vec<u64> {
        let sc = u64::from(self.stripe_count);
        let mut out = vec![0u64; self.stripe_count as usize];
        if len == 0 {
            return out;
        }
        let first_chunk = self.chunk_of(offset);
        let last_chunk = self.chunk_of(offset + len - 1);
        if first_chunk == last_chunk {
            out[(first_chunk % sc) as usize] = len;
            return out;
        }
        // Partial head chunk.
        let head = (first_chunk + 1) * self.chunk_size - offset;
        out[(first_chunk % sc) as usize] += head;
        // Partial tail chunk.
        let tail = offset + len - last_chunk * self.chunk_size;
        out[(last_chunk % sc) as usize] += tail;
        // Whole chunks in between: distribute by counting how many of the
        // chunk indices in (first, last) land on each slot.
        let n_mid = last_chunk - first_chunk - 1;
        if n_mid > 0 {
            let per_slot = n_mid / sc;
            for slot_bytes in out.iter_mut() {
                *slot_bytes += per_slot * self.chunk_size;
            }
            let rem = n_mid % sc;
            for k in 0..rem {
                let chunk = first_chunk + 1 + per_slot * sc + k;
                out[(chunk % sc) as usize] += self.chunk_size;
            }
        }
        debug_assert_eq!(out.iter().sum::<u64>(), len);
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use simcore::units::{GIB, KIB, MIB};

    #[test]
    fn plafrim_default_matches_paper() {
        let p = StripePattern::PLAFRIM_DEFAULT;
        assert_eq!(p.stripe_count, 4);
        assert_eq!(p.chunk_size, 512 * KIB);
    }

    #[test]
    fn chunk_and_slot_math() {
        let p = StripePattern::new(4, 512 * KIB);
        assert_eq!(p.chunk_of(0), 0);
        assert_eq!(p.chunk_of(512 * KIB - 1), 0);
        assert_eq!(p.chunk_of(512 * KIB), 1);
        assert_eq!(p.slot_of(0), 0);
        assert_eq!(p.slot_of(512 * KIB), 1);
        assert_eq!(p.slot_of(4 * 512 * KIB), 0); // wraps
    }

    #[test]
    fn one_mib_transfer_spans_two_slots() {
        // The paper uses 1 MiB transfers over 512 KiB chunks precisely so
        // each request touches more than one OST.
        let p = StripePattern::PLAFRIM_DEFAULT;
        let slots = p.bytes_per_slot(0, MIB);
        assert_eq!(slots, vec![512 * KIB, 512 * KIB, 0, 0]);
        let slots = p.bytes_per_slot(MIB, MIB);
        assert_eq!(slots, vec![0, 0, 512 * KIB, 512 * KIB]);
    }

    #[test]
    fn aligned_range_distributes_evenly() {
        let p = StripePattern::new(4, 512 * KIB);
        // 4 GiB aligned: exactly 1 GiB per slot.
        let slots = p.bytes_per_slot(0, 4 * GIB);
        assert!(slots.iter().all(|&b| b == GIB));
    }

    #[test]
    fn unaligned_range_conserves_bytes() {
        let p = StripePattern::new(3, 512 * KIB);
        let len = 7 * MIB + 123;
        let slots = p.bytes_per_slot(1000, len);
        assert_eq!(slots.iter().sum::<u64>(), len);
        assert_eq!(slots.len(), 3);
    }

    #[test]
    fn sub_chunk_range_hits_single_slot() {
        let p = StripePattern::new(8, 512 * KIB);
        let slots = p.bytes_per_slot(100, 1000);
        assert_eq!(slots[0], 1000);
        assert!(slots[1..].iter().all(|&b| b == 0));
    }

    #[test]
    fn range_straddling_two_chunks_splits() {
        let p = StripePattern::new(4, 512 * KIB);
        // 1000 bytes starting 500 before a chunk boundary.
        let start = 512 * KIB - 500;
        let slots = p.bytes_per_slot(start, 1000);
        assert_eq!(slots[0], 500);
        assert_eq!(slots[1], 500);
    }

    #[test]
    fn zero_length_range_is_empty() {
        let p = StripePattern::new(4, 512 * KIB);
        assert_eq!(p.bytes_per_slot(12345, 0), vec![0, 0, 0, 0]);
    }

    #[test]
    fn stripe_count_one_puts_everything_on_slot_zero() {
        let p = StripePattern::new(1, 512 * KIB);
        let slots = p.bytes_per_slot(999, 10 * MIB);
        assert_eq!(slots, vec![10 * MIB]);
    }

    #[test]
    #[should_panic(expected = "stripe count must be positive")]
    fn zero_stripe_count_rejected() {
        let _ = StripePattern::new(0, 512 * KIB);
    }

    #[test]
    #[should_panic(expected = "chunk size must be positive")]
    fn zero_chunk_size_rejected() {
        let _ = StripePattern::new(4, 0);
    }
}
