//! Stripe-count auto-tuning — the paper's §VI "future work on storage
//! target allocation and stripe count tuning", built on the analytic
//! capacity model.
//!
//! Given a platform and an expected workload shape (nodes, processes per
//! node), [`recommend`] evaluates every stripe count under the *worst*
//! allocation the deployment's chooser can produce, and returns the
//! count with the best worst-case — which is how an administrator should
//! pick a default they cannot adapt per job (BeeGFS striping is
//! per-directory and admin-only, §I).
//!
//! For PlaFRIM-shaped systems the recommendation reproduces the paper's
//! conclusion: use **all** targets, because the maximum stripe count is
//! the only one whose allocation is balanced by construction.

use crate::analytic::predict_bandwidth;
use cluster::{Platform, ServerId, TargetId};
use serde::{Deserialize, Serialize};
use simcore::units::Bandwidth;

/// One evaluated stripe count.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct StripeEvaluation {
    /// The stripe count.
    pub stripe_count: u32,
    /// Predicted bandwidth of the *best* possible allocation.
    pub best_case: Bandwidth,
    /// Predicted bandwidth of the *worst* possible allocation.
    pub worst_case: Bandwidth,
}

impl StripeEvaluation {
    /// Spread between best and worst case relative to the worst; 0 means
    /// the allocation cannot matter at this count.
    pub fn allocation_risk(&self) -> f64 {
        let w = self.worst_case.bytes_per_sec();
        if w == 0.0 {
            0.0
        } else {
            self.best_case.bytes_per_sec() / w - 1.0
        }
    }
}

/// The tuner's output.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Recommendation {
    /// Recommended default stripe count.
    pub stripe_count: u32,
    /// The evaluation backing the recommendation.
    pub chosen: StripeEvaluation,
    /// All evaluations, by stripe count.
    pub evaluations: Vec<StripeEvaluation>,
}

/// Enumerate the most and least balanced allocations of `count` targets.
fn extreme_allocations(platform: &Platform, count: usize) -> (Vec<TargetId>, Vec<TargetId>) {
    let m = platform.server_count();
    // Most balanced: round-robin across servers.
    let mut balanced = Vec::with_capacity(count);
    let per = count / m;
    let extra = count % m;
    for s in 0..m {
        let want = per + usize::from(s < extra);
        balanced.extend(
            platform
                .targets_of(ServerId(s as u32))
                .into_iter()
                .take(want),
        );
    }
    // Least balanced: fill servers one at a time.
    let mut skewed = Vec::with_capacity(count);
    'outer: for s in 0..m {
        for t in platform.targets_of(ServerId(s as u32)) {
            skewed.push(t);
            if skewed.len() == count {
                break 'outer;
            }
        }
    }
    (balanced, skewed)
}

/// Evaluate one stripe count: best and worst allocation.
pub fn evaluate(
    platform: &Platform,
    nodes: usize,
    ppn: u32,
    stripe_count: u32,
) -> StripeEvaluation {
    let (balanced, skewed) = extreme_allocations(platform, stripe_count as usize);
    let best = predict_bandwidth(platform, nodes, ppn, &balanced);
    let worst = predict_bandwidth(platform, nodes, ppn, &skewed);
    // The "balanced" enumeration is the best case for every platform
    // where servers are homogeneous (all presets).
    StripeEvaluation {
        stripe_count,
        best_case: best.max(worst),
        worst_case: best.min(worst),
    }
}

/// Recommend a default stripe count for the platform and workload shape:
/// the count with the highest worst-case bandwidth (ties broken toward
/// higher counts, which also minimizes allocation risk).
///
/// ```
/// use beegfs_core::tuning::recommend;
/// use cluster::presets;
///
/// // The paper's conclusion, derived: stripe over all 8 targets.
/// let rec = recommend(&presets::plafrim_ethernet(), 16, 8);
/// assert_eq!(rec.stripe_count, 8);
/// ```
///
/// # Panics
/// Panics if the platform has no targets or `nodes`/`ppn` is zero.
pub fn recommend(platform: &Platform, nodes: usize, ppn: u32) -> Recommendation {
    let max = platform.total_targets() as u32;
    assert!(max > 0, "platform has no storage targets");
    let evaluations: Vec<StripeEvaluation> = (1..=max)
        .map(|s| evaluate(platform, nodes, ppn, s))
        .collect();
    let chosen = evaluations
        .iter()
        .max_by(|a, b| {
            a.worst_case
                .bytes_per_sec()
                .partial_cmp(&b.worst_case.bytes_per_sec())
                .expect("finite bandwidths")
                .then(a.stripe_count.cmp(&b.stripe_count))
        })
        .expect("at least one stripe count")
        .clone();
    Recommendation {
        stripe_count: chosen.stripe_count,
        chosen,
        evaluations,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cluster::presets;

    #[test]
    fn plafrim_recommendation_is_all_targets_in_both_scenarios() {
        // The paper's headline conclusion.
        for platform in [presets::plafrim_ethernet(), presets::plafrim_omnipath()] {
            let rec = recommend(&platform, 16, 8);
            assert_eq!(rec.stripe_count, 8, "{}", platform.name);
            assert_eq!(rec.chosen.allocation_risk(), 0.0);
        }
    }

    #[test]
    fn maximum_count_has_zero_allocation_risk() {
        let platform = presets::plafrim_ethernet();
        let eval = evaluate(&platform, 8, 8, 8);
        assert_eq!(
            eval.best_case.bytes_per_sec(),
            eval.worst_case.bytes_per_sec()
        );
    }

    #[test]
    fn intermediate_counts_carry_allocation_risk_in_scenario1() {
        let platform = presets::plafrim_ethernet();
        // Stripe 4: (2,2) best vs (0,4) worst — factor 2 on the links.
        let eval = evaluate(&platform, 8, 8, 4);
        assert!(
            eval.allocation_risk() > 0.5,
            "risk {}",
            eval.allocation_risk()
        );
    }

    #[test]
    fn worst_case_is_monotone_enough_to_justify_the_max() {
        // No intermediate count's worst case beats the maximum's.
        let platform = presets::plafrim_omnipath();
        let rec = recommend(&platform, 32, 8);
        let max_worst = rec.chosen.worst_case.bytes_per_sec();
        for e in &rec.evaluations {
            assert!(e.worst_case.bytes_per_sec() <= max_worst + 1e-6);
        }
    }

    #[test]
    fn extreme_allocations_have_extreme_balance() {
        let platform = presets::plafrim_ethernet();
        let (balanced, skewed) = extreme_allocations(&platform, 4);
        let ab = crate::alloc::Allocation::classify(&platform, &balanced);
        let as_ = crate::alloc::Allocation::classify(&platform, &skewed);
        assert_eq!(ab.label(), "(2,2)");
        assert_eq!(as_.label(), "(0,4)");
    }

    #[test]
    fn catalyst_recommendation_also_max() {
        let platform = presets::catalyst_like();
        let rec = recommend(&platform, 64, 8);
        assert_eq!(rec.stripe_count, 24);
    }
}
