//! Deterministic mid-run fault timelines.
//!
//! A [`FaultPlan`] is a validated, time-sorted list of [`FaultEvent`]s —
//! "target 5 goes offline at t=4s, recovers at t=12s", "oss1's link
//! drops to 40% at t=2s" — that the `ior` runner compiles into scheduled
//! capacity changes inside the fluid simulation. Because the plan is
//! plain data (serde-serializable) and the simulation is deterministic,
//! the same seed plus the same plan reproduces a faulted run bit for
//! bit, which is what makes fault experiments comparable across
//! allocation policies.

use crate::error::{validate_state, StateError};
use crate::services::TargetState;
use cluster::TargetId;
use serde::{Deserialize, Serialize};
use std::fmt;

/// What happens at a fault event.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum FaultKind {
    /// The management service records a new state for a target: `Offline`
    /// (the OST stops serving), `Degraded(f)` (RAID rebuild, failing
    /// disk), or back to `Online` (recovery).
    SetTargetState {
        /// The affected target.
        target: TargetId,
        /// Its state from this event's instant on.
        state: TargetState,
    },
    /// The network link of a storage server degrades to `factor` of its
    /// nominal speed (cable fault, switch-port flap): every target on
    /// that server is slowed without any of them being marked unhealthy.
    DegradeServerLink {
        /// The affected server (flat index).
        server: u32,
        /// Remaining fraction of link speed, in `(0, 1]`.
        factor: f64,
    },
    /// The server's link returns to full speed.
    RestoreServerLink {
        /// The recovered server (flat index).
        server: u32,
    },
    /// A target's capacity drifts continuously downward — the classic
    /// *slow* straggler (failing disk, firmware GC storms, thermal
    /// throttling) that binary offline/online transitions cannot
    /// express. From `at_s` the target ramps linearly from full speed
    /// to `floor` over `ramp_s` seconds and then stays there; the ramp
    /// is compiled into a [`SLOW_DRIFT_STEPS`]-step staircase of
    /// `Degraded` states (see [`FaultPlan::target_state_curve`]).
    SlowDrift {
        /// The affected target.
        target: TargetId,
        /// Terminal fraction of nominal speed, in `(0, 1]`.
        floor: f64,
        /// Seconds the linear ramp takes from onset to `floor`.
        ramp_s: f64,
    },
    /// A transient straggler: the target drops to `factor` of nominal
    /// speed at `at_s` and recovers to full speed on its own after
    /// `duration_s` seconds (background scrub, competing tenant burst).
    TransientStraggler {
        /// The affected target.
        target: TargetId,
        /// Fraction of nominal speed while straggling, in `(0, 1]`.
        factor: f64,
        /// Seconds until the target recovers to full speed.
        duration_s: f64,
    },
}

/// Number of staircase steps a [`FaultKind::SlowDrift`] ramp is
/// discretized into when compiled to scheduled capacity changes.
pub const SLOW_DRIFT_STEPS: u32 = 8;

/// One timestamped fault.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct FaultEvent {
    /// When the fault strikes, seconds from the start of the run.
    pub at_s: f64,
    /// What happens.
    pub kind: FaultKind,
}

/// A fault plan failed validation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum FaultPlanError {
    /// An event time was NaN, infinite or negative.
    InvalidTime(f64),
    /// A link degradation factor was outside `(0, 1]`.
    InvalidLinkFactor(f64),
    /// A target-state event carried an invalid state.
    State(StateError),
    /// A ramp or recovery duration was NaN, infinite, or not positive.
    InvalidDuration(f64),
}

impl fmt::Display for FaultPlanError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FaultPlanError::InvalidTime(t) => {
                write!(f, "invalid fault time {t}: must be finite and >= 0")
            }
            FaultPlanError::InvalidLinkFactor(x) => {
                write!(f, "invalid link factor {x}: must be finite and in (0, 1]")
            }
            FaultPlanError::State(e) => write!(f, "invalid fault state: {e}"),
            FaultPlanError::InvalidDuration(d) => {
                write!(f, "invalid fault duration {d}s: must be finite and > 0")
            }
        }
    }
}

impl std::error::Error for FaultPlanError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            FaultPlanError::State(e) => Some(e),
            _ => None,
        }
    }
}

impl From<StateError> for FaultPlanError {
    fn from(e: StateError) -> Self {
        FaultPlanError::State(e)
    }
}

/// A deterministic timeline of faults, kept sorted by time.
///
/// Events at the same instant keep their insertion order, so plans are
/// fully deterministic. Build one with the fluent helpers:
///
/// ```
/// use beegfs_core::faults::FaultPlan;
/// use cluster::TargetId;
///
/// let plan = FaultPlan::new()
///     .target_offline(4.0, TargetId(5)).unwrap()
///     .target_recovers(12.0, TargetId(5)).unwrap();
/// assert_eq!(plan.len(), 2);
/// ```
#[derive(Debug, Clone, PartialEq, Default, Serialize)]
pub struct FaultPlan {
    events: Vec<FaultEvent>,
}

// Deserialization routes through [`FaultPlan::from_events`] so a plan
// loaded from JSON passes the same validation and time-sorting as one
// built with the fluent constructors — raw data cannot smuggle in
// `Degraded(0.0)`, negative times, or unsorted events.
impl Deserialize for FaultPlan {
    fn from_value(v: &serde::Value) -> Result<Self, serde::DeError> {
        let events = v
            .get("events")
            .ok_or_else(|| serde::DeError::custom("missing field `events`"))?;
        let events = Vec::<FaultEvent>::from_value(events)?;
        FaultPlan::from_events(events).map_err(serde::DeError::custom)
    }
}

fn validate_event(ev: &FaultEvent) -> Result<(), FaultPlanError> {
    if !(ev.at_s.is_finite() && ev.at_s >= 0.0) {
        return Err(FaultPlanError::InvalidTime(ev.at_s));
    }
    match ev.kind {
        FaultKind::SetTargetState { state, .. } => validate_state(state)?,
        FaultKind::DegradeServerLink { factor, .. } => {
            if !(factor.is_finite() && factor > 0.0 && factor <= 1.0) {
                return Err(FaultPlanError::InvalidLinkFactor(factor));
            }
        }
        FaultKind::RestoreServerLink { .. } => {}
        FaultKind::SlowDrift { floor, ramp_s, .. } => {
            validate_state(TargetState::Degraded(floor))?;
            if !(ramp_s.is_finite() && ramp_s > 0.0) {
                return Err(FaultPlanError::InvalidDuration(ramp_s));
            }
        }
        FaultKind::TransientStraggler {
            factor, duration_s, ..
        } => {
            validate_state(TargetState::Degraded(factor))?;
            if !(duration_s.is_finite() && duration_s > 0.0) {
                return Err(FaultPlanError::InvalidDuration(duration_s));
            }
        }
    }
    Ok(())
}

/// Expand one fault event into the `(time, target, state)` steps it
/// contributes to the compiled capacity curve. Link events contribute
/// nothing (they are compiled separately). `SetTargetState` is a single
/// step; `SlowDrift` becomes a [`SLOW_DRIFT_STEPS`]-step `Degraded`
/// staircase under the linear ramp, ending exactly at the floor;
/// `TransientStraggler` is a `Degraded` step plus an `Online` recovery.
fn expand_target_steps(ev: &FaultEvent, out: &mut Vec<(f64, TargetId, TargetState)>) {
    match ev.kind {
        FaultKind::SetTargetState { target, state } => out.push((ev.at_s, target, state)),
        FaultKind::SlowDrift {
            target,
            floor,
            ramp_s,
        } => {
            for k in 1..=SLOW_DRIFT_STEPS {
                let frac = f64::from(k) / f64::from(SLOW_DRIFT_STEPS);
                let factor = if k == SLOW_DRIFT_STEPS {
                    floor
                } else {
                    1.0 - (1.0 - floor) * frac
                };
                out.push((
                    ev.at_s + ramp_s * frac,
                    target,
                    TargetState::Degraded(factor),
                ));
            }
        }
        FaultKind::TransientStraggler {
            target,
            factor,
            duration_s,
        } => {
            out.push((ev.at_s, target, TargetState::Degraded(factor)));
            out.push((ev.at_s + duration_s, target, TargetState::Online));
        }
        FaultKind::DegradeServerLink { .. } | FaultKind::RestoreServerLink { .. } => {}
    }
}

impl FaultPlan {
    /// An empty plan (a run with no faults).
    pub fn new() -> Self {
        FaultPlan::default()
    }

    /// Build a plan from raw events, validating and time-sorting them
    /// (stable: same-instant events keep their given order).
    pub fn from_events(events: Vec<FaultEvent>) -> Result<Self, FaultPlanError> {
        let mut plan = FaultPlan { events };
        for ev in &plan.events {
            validate_event(ev)?;
        }
        plan.events.sort_by(|a, b| a.at_s.total_cmp(&b.at_s));
        Ok(plan)
    }

    /// Append a validated event, keeping the plan time-sorted.
    pub fn push(mut self, ev: FaultEvent) -> Result<Self, FaultPlanError> {
        validate_event(&ev)?;
        // Stable insertion: place after every event at the same instant.
        let pos = self.events.partition_point(|e| e.at_s <= ev.at_s);
        self.events.insert(pos, ev);
        Ok(self)
    }

    /// Target `t` becomes unreachable at `at_s`.
    pub fn target_offline(self, at_s: f64, target: TargetId) -> Result<Self, FaultPlanError> {
        self.push(FaultEvent {
            at_s,
            kind: FaultKind::SetTargetState {
                target,
                state: TargetState::Offline,
            },
        })
    }

    /// Target `t` returns to full health at `at_s`.
    pub fn target_recovers(self, at_s: f64, target: TargetId) -> Result<Self, FaultPlanError> {
        self.push(FaultEvent {
            at_s,
            kind: FaultKind::SetTargetState {
                target,
                state: TargetState::Online,
            },
        })
    }

    /// Target `t` slows to `factor` of nominal speed at `at_s` (straggler
    /// onset, RAID rebuild).
    pub fn target_degraded(
        self,
        at_s: f64,
        target: TargetId,
        factor: f64,
    ) -> Result<Self, FaultPlanError> {
        self.push(FaultEvent {
            at_s,
            kind: FaultKind::SetTargetState {
                target,
                state: TargetState::Degraded(factor),
            },
        })
    }

    /// Target `t` starts drifting at `at_s`: a linear ramp from full
    /// speed down to `floor` over `ramp_s` seconds, persisting at the
    /// floor until some later event (if any) changes its state.
    pub fn target_slow_drift(
        self,
        at_s: f64,
        target: TargetId,
        floor: f64,
        ramp_s: f64,
    ) -> Result<Self, FaultPlanError> {
        self.push(FaultEvent {
            at_s,
            kind: FaultKind::SlowDrift {
                target,
                floor,
                ramp_s,
            },
        })
    }

    /// Target `t` straggles at `factor` of nominal speed from `at_s`,
    /// recovering to full speed on its own after `duration_s` seconds.
    pub fn target_transient_straggler(
        self,
        at_s: f64,
        target: TargetId,
        factor: f64,
        duration_s: f64,
    ) -> Result<Self, FaultPlanError> {
        self.push(FaultEvent {
            at_s,
            kind: FaultKind::TransientStraggler {
                target,
                factor,
                duration_s,
            },
        })
    }

    /// Server `server`'s network link degrades to `factor` at `at_s`.
    pub fn link_degraded(
        self,
        at_s: f64,
        server: u32,
        factor: f64,
    ) -> Result<Self, FaultPlanError> {
        self.push(FaultEvent {
            at_s,
            kind: FaultKind::DegradeServerLink { server, factor },
        })
    }

    /// Server `server`'s link returns to full speed at `at_s`.
    pub fn link_restored(self, at_s: f64, server: u32) -> Result<Self, FaultPlanError> {
        self.push(FaultEvent {
            at_s,
            kind: FaultKind::RestoreServerLink { server },
        })
    }

    /// The events, in time order.
    pub fn events(&self) -> &[FaultEvent] {
        &self.events
    }

    /// Number of events.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// Whether the plan has no events.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// The piecewise-constant state curve this plan compiles to for one
    /// target: every `(time, state)` step in time order, with
    /// [`FaultKind::SlowDrift`] ramps expanded into their `Degraded`
    /// staircase and [`FaultKind::TransientStraggler`] episodes into
    /// their onset/recovery pair. Same-instant steps keep plan order
    /// (last write wins when applied), and steps from *different*
    /// events interleave freely — an offline/recovery pair in the
    /// middle of a drift ramp yields exactly the merged timeline, with
    /// the remaining ramp steps still landing after the recovery.
    pub fn target_state_curve(&self, target: TargetId) -> Vec<(f64, TargetState)> {
        let mut steps = Vec::new();
        for ev in &self.events {
            expand_target_steps(ev, &mut steps);
        }
        let mut curve: Vec<(f64, TargetState)> = steps
            .into_iter()
            .filter(|&(_, t, _)| t == target)
            .map(|(at_s, _, state)| (at_s, state))
            .collect();
        // Stable: same-instant steps keep event (insertion) order.
        curve.sort_by(|a, b| a.0.total_cmp(&b.0));
        curve
    }

    /// Every target any event of the plan touches, in first-touch order.
    pub fn touched_targets(&self) -> Vec<TargetId> {
        let mut seen = Vec::new();
        for ev in &self.events {
            let t = match ev.kind {
                FaultKind::SetTargetState { target, .. }
                | FaultKind::SlowDrift { target, .. }
                | FaultKind::TransientStraggler { target, .. } => target,
                FaultKind::DegradeServerLink { .. } | FaultKind::RestoreServerLink { .. } => {
                    continue
                }
            };
            if !seen.contains(&t) {
                seen.push(t);
            }
        }
        seen
    }

    /// The state a target ends up in once the whole timeline has played
    /// out, if any event touches it — `None` if the plan never does.
    /// Drift ramps count: a plan ending in a [`FaultKind::SlowDrift`]
    /// leaves the target `Degraded` at the drift floor.
    pub fn final_target_state(&self, target: TargetId) -> Option<TargetState> {
        self.target_state_curve(target)
            .pop()
            .map(|(_, state)| state)
    }

    /// Emit the plan's *physical* timeline into an event recorder:
    /// target offline/degraded/online transitions and server-link
    /// degradations, at the instants the faults strike (clients observe
    /// them later, after the heartbeat delay — the runner records those
    /// as separate stall/retry events).
    pub fn record_into(&self, recorder: &mut dyn obs::Recorder) {
        let mut steps = Vec::new();
        for ev in &self.events {
            let at = simcore::time::SimTime::from_secs_f64(ev.at_s).as_nanos();
            match ev.kind {
                FaultKind::DegradeServerLink { server, factor } => {
                    recorder.record(obs::Event::LinkDegraded { at, server, factor });
                }
                FaultKind::RestoreServerLink { server } => {
                    recorder.record(obs::Event::LinkRestored { at, server });
                }
                // Target events record their full expanded curve, so a
                // drift ramp shows up in the trace exactly as the
                // staircase the simulation executes.
                _ => {
                    steps.clear();
                    expand_target_steps(ev, &mut steps);
                    for &(at_s, target, state) in &steps {
                        let at = simcore::time::SimTime::from_secs_f64(at_s).as_nanos();
                        recorder.record(match state {
                            TargetState::Offline => obs::Event::TargetOffline {
                                at,
                                target: target.0,
                            },
                            TargetState::Online => obs::Event::TargetOnline {
                                at,
                                target: target.0,
                            },
                            TargetState::Degraded(factor) => obs::Event::TargetDegraded {
                                at,
                                target: target.0,
                                factor,
                            },
                        });
                    }
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn helpers_build_a_sorted_plan() {
        let plan = FaultPlan::new()
            .target_recovers(12.0, TargetId(5))
            .unwrap()
            .target_offline(4.0, TargetId(5))
            .unwrap()
            .link_degraded(6.0, 1, 0.4)
            .unwrap();
        let times: Vec<f64> = plan.events().iter().map(|e| e.at_s).collect();
        assert_eq!(times, vec![4.0, 6.0, 12.0]);
        assert_eq!(
            plan.final_target_state(TargetId(5)),
            Some(TargetState::Online)
        );
        assert_eq!(plan.final_target_state(TargetId(0)), None);
    }

    #[test]
    fn record_into_emits_the_physical_timeline() {
        let plan = FaultPlan::new()
            .target_offline(4.0, TargetId(5))
            .unwrap()
            .link_degraded(6.0, 1, 0.4)
            .unwrap()
            .target_recovers(12.0, TargetId(5))
            .unwrap()
            .link_restored(13.0, 1)
            .unwrap();
        let mut timeline = obs::Timeline::new();
        plan.record_into(&mut timeline);
        let ns = |s: f64| simcore::time::SimTime::from_secs_f64(s).as_nanos();
        assert_eq!(
            timeline.events(),
            &[
                obs::Event::TargetOffline {
                    at: ns(4.0),
                    target: 5
                },
                obs::Event::LinkDegraded {
                    at: ns(6.0),
                    server: 1,
                    factor: 0.4
                },
                obs::Event::TargetOnline {
                    at: ns(12.0),
                    target: 5
                },
                obs::Event::LinkRestored {
                    at: ns(13.0),
                    server: 1
                },
            ]
        );
    }

    #[test]
    fn same_instant_events_keep_insertion_order() {
        let plan = FaultPlan::new()
            .target_offline(5.0, TargetId(1))
            .unwrap()
            .target_recovers(5.0, TargetId(1))
            .unwrap();
        assert_eq!(
            plan.final_target_state(TargetId(1)),
            Some(TargetState::Online)
        );
    }

    #[test]
    fn invalid_events_are_rejected() {
        assert!(matches!(
            FaultPlan::new().target_offline(-1.0, TargetId(0)),
            Err(FaultPlanError::InvalidTime(_))
        ));
        assert!(matches!(
            FaultPlan::new().target_offline(f64::NAN, TargetId(0)),
            Err(FaultPlanError::InvalidTime(_))
        ));
        assert!(matches!(
            FaultPlan::new().target_degraded(1.0, TargetId(0), 0.0),
            Err(FaultPlanError::State(StateError::InvalidDegradedFactor(_)))
        ));
        assert!(matches!(
            FaultPlan::new().link_degraded(1.0, 0, 1.5),
            Err(FaultPlanError::InvalidLinkFactor(1.5))
        ));
    }

    #[test]
    fn from_events_sorts_and_validates() {
        let raw = vec![
            FaultEvent {
                at_s: 9.0,
                kind: FaultKind::RestoreServerLink { server: 0 },
            },
            FaultEvent {
                at_s: 3.0,
                kind: FaultKind::DegradeServerLink {
                    server: 0,
                    factor: 0.5,
                },
            },
        ];
        let plan = FaultPlan::from_events(raw).unwrap();
        assert_eq!(plan.events()[0].at_s, 3.0);
        assert!(FaultPlan::from_events(vec![FaultEvent {
            at_s: f64::INFINITY,
            kind: FaultKind::RestoreServerLink { server: 0 },
        }])
        .is_err());
    }

    #[test]
    fn deserialization_revalidates_and_resorts() {
        let degraded = |at_s, factor| FaultEvent {
            at_s,
            kind: FaultKind::SetTargetState {
                target: TargetId(0),
                state: TargetState::Degraded(factor),
            },
        };
        // Bypass the validating constructors: serializing an invalid plan
        // is possible, loading it back must not be.
        let bad = FaultPlan {
            events: vec![degraded(1.0, 0.0)],
        };
        let json = serde_json::to_string(&bad).unwrap();
        let err = serde_json::from_str::<FaultPlan>(&json).unwrap_err();
        assert!(err.to_string().contains("invalid"), "{err}");

        // Unsorted raw events come back time-sorted.
        let unsorted = FaultPlan {
            events: vec![degraded(9.0, 0.5), degraded(3.0, 0.5)],
        };
        let json = serde_json::to_string(&unsorted).unwrap();
        let back: FaultPlan = serde_json::from_str(&json).unwrap();
        let times: Vec<f64> = back.events().iter().map(|e| e.at_s).collect();
        assert_eq!(times, vec![3.0, 9.0]);
    }

    #[test]
    fn plans_round_trip_through_json() {
        let plan = FaultPlan::new()
            .target_offline(4.0, TargetId(5))
            .unwrap()
            .target_degraded(6.0, TargetId(2), 0.25)
            .unwrap()
            .target_recovers(12.5, TargetId(5))
            .unwrap()
            .link_degraded(2.0, 1, 0.4)
            .unwrap();
        let json = serde_json::to_string(&plan).unwrap();
        let back: FaultPlan = serde_json::from_str(&json).unwrap();
        assert_eq!(back, plan);
    }

    #[test]
    fn straggler_plans_round_trip_through_json() {
        let plan = FaultPlan::new()
            .target_slow_drift(2.0, TargetId(3), 0.3, 16.0)
            .unwrap()
            .target_transient_straggler(5.0, TargetId(7), 0.2, 10.0)
            .unwrap();
        let json = serde_json::to_string(&plan).unwrap();
        let back: FaultPlan = serde_json::from_str(&json).unwrap();
        assert_eq!(back, plan);
    }

    #[test]
    fn straggler_validation_rejects_bad_parameters() {
        assert!(matches!(
            FaultPlan::new().target_slow_drift(1.0, TargetId(0), 0.0, 8.0),
            Err(FaultPlanError::State(StateError::InvalidDegradedFactor(_)))
        ));
        assert!(matches!(
            FaultPlan::new().target_slow_drift(1.0, TargetId(0), 1.5, 8.0),
            Err(FaultPlanError::State(StateError::InvalidDegradedFactor(_)))
        ));
        assert!(matches!(
            FaultPlan::new().target_slow_drift(1.0, TargetId(0), 0.5, 0.0),
            Err(FaultPlanError::InvalidDuration(_))
        ));
        assert!(matches!(
            FaultPlan::new().target_transient_straggler(1.0, TargetId(0), 0.5, f64::NAN),
            Err(FaultPlanError::InvalidDuration(_))
        ));
        assert!(matches!(
            FaultPlan::new().target_transient_straggler(1.0, TargetId(0), -0.2, 5.0),
            Err(FaultPlanError::State(StateError::InvalidDegradedFactor(_)))
        ));
    }

    #[test]
    fn straggler_deserialization_revalidates() {
        // Bypass the validating constructors, as in
        // `deserialization_revalidates_and_resorts`: a hand-built plan
        // with an invalid drift floor serializes but must not load.
        let bad = FaultPlan {
            events: vec![FaultEvent {
                at_s: 1.0,
                kind: FaultKind::SlowDrift {
                    target: TargetId(0),
                    floor: 0.0,
                    ramp_s: 4.0,
                },
            }],
        };
        let json = serde_json::to_string(&bad).unwrap();
        assert!(serde_json::from_str::<FaultPlan>(&json).is_err());

        let bad = FaultPlan {
            events: vec![FaultEvent {
                at_s: 1.0,
                kind: FaultKind::TransientStraggler {
                    target: TargetId(0),
                    factor: 0.5,
                    duration_s: -3.0,
                },
            }],
        };
        let json = serde_json::to_string(&bad).unwrap();
        assert!(serde_json::from_str::<FaultPlan>(&json).is_err());
    }

    #[test]
    fn slow_drift_expands_to_a_monotone_staircase() {
        let plan = FaultPlan::new()
            .target_slow_drift(10.0, TargetId(2), 0.25, 8.0)
            .unwrap();
        let curve = plan.target_state_curve(TargetId(2));
        assert_eq!(curve.len(), SLOW_DRIFT_STEPS as usize);
        // First step one increment after onset, last step at the floor
        // exactly when the ramp ends.
        assert_eq!(curve[0].0, 11.0);
        assert_eq!(curve.last().unwrap().0, 18.0);
        assert_eq!(curve.last().unwrap().1, TargetState::Degraded(0.25));
        let mut prev = 1.0;
        for &(_, state) in &curve {
            let f = state.speed_factor();
            assert!(f < prev, "staircase must strictly decrease ({f} >= {prev})");
            assert!(f >= 0.25);
            prev = f;
        }
        assert_eq!(
            plan.final_target_state(TargetId(2)),
            Some(TargetState::Degraded(0.25))
        );
    }

    #[test]
    fn transient_straggler_recovers_on_its_own() {
        let plan = FaultPlan::new()
            .target_transient_straggler(3.0, TargetId(4), 0.2, 6.0)
            .unwrap();
        let curve = plan.target_state_curve(TargetId(4));
        assert_eq!(
            curve,
            vec![
                (3.0, TargetState::Degraded(0.2)),
                (9.0, TargetState::Online)
            ]
        );
        assert_eq!(
            plan.final_target_state(TargetId(4)),
            Some(TargetState::Online)
        );
        assert!(plan.target_state_curve(TargetId(0)).is_empty());
    }

    #[test]
    fn overlapping_straggler_and_offline_merge_and_round_trip() {
        // A drift ramp with an offline/recovery pair punched through its
        // middle: the merged curve interleaves both timelines, and the
        // ramp's remaining steps still land after the recovery, so the
        // target ends at the drift floor rather than pristine.
        let plan = FaultPlan::new()
            .target_slow_drift(0.0, TargetId(1), 0.5, 8.0)
            .unwrap()
            .target_offline(3.5, TargetId(1))
            .unwrap()
            .target_recovers(4.5, TargetId(1))
            .unwrap();
        let curve = plan.target_state_curve(TargetId(1));
        assert_eq!(curve.len(), SLOW_DRIFT_STEPS as usize + 2);
        let times: Vec<f64> = curve.iter().map(|&(t, _)| t).collect();
        assert!(times.windows(2).all(|w| w[0] <= w[1]), "curve time-sorted");
        // Drift steps land at t = 1..=8; the outage interleaves between.
        assert_eq!(curve[3], (3.5, TargetState::Offline));
        assert_eq!(curve[5], (4.5, TargetState::Online));
        assert_eq!(
            plan.final_target_state(TargetId(1)),
            Some(TargetState::Degraded(0.5))
        );
        assert_eq!(plan.touched_targets(), vec![TargetId(1)]);

        // And the overlapping plan survives a JSON round trip intact
        // (deserialization re-validates and re-sorts).
        let json = serde_json::to_string(&plan).unwrap();
        let back: FaultPlan = serde_json::from_str(&json).unwrap();
        assert_eq!(back, plan);
        assert_eq!(back.target_state_curve(TargetId(1)), curve);
    }

    #[test]
    fn record_into_expands_drift_ramps() {
        let plan = FaultPlan::new()
            .target_transient_straggler(2.0, TargetId(6), 0.4, 3.0)
            .unwrap();
        let mut timeline = obs::Timeline::new();
        plan.record_into(&mut timeline);
        let ns = |s: f64| simcore::time::SimTime::from_secs_f64(s).as_nanos();
        assert_eq!(
            timeline.events(),
            &[
                obs::Event::TargetDegraded {
                    at: ns(2.0),
                    target: 6,
                    factor: 0.4
                },
                obs::Event::TargetOnline {
                    at: ns(5.0),
                    target: 6
                },
            ]
        );

        let drift = FaultPlan::new()
            .target_slow_drift(0.0, TargetId(1), 0.5, 8.0)
            .unwrap();
        let mut timeline = obs::Timeline::new();
        drift.record_into(&mut timeline);
        assert_eq!(timeline.events().len(), SLOW_DRIFT_STEPS as usize);
    }
}
