//! Deterministic mid-run fault timelines.
//!
//! A [`FaultPlan`] is a validated, time-sorted list of [`FaultEvent`]s —
//! "target 5 goes offline at t=4s, recovers at t=12s", "oss1's link
//! drops to 40% at t=2s" — that the `ior` runner compiles into scheduled
//! capacity changes inside the fluid simulation. Because the plan is
//! plain data (serde-serializable) and the simulation is deterministic,
//! the same seed plus the same plan reproduces a faulted run bit for
//! bit, which is what makes fault experiments comparable across
//! allocation policies.

use crate::error::{validate_state, StateError};
use crate::services::TargetState;
use cluster::TargetId;
use serde::{Deserialize, Serialize};
use std::fmt;

/// What happens at a fault event.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum FaultKind {
    /// The management service records a new state for a target: `Offline`
    /// (the OST stops serving), `Degraded(f)` (RAID rebuild, failing
    /// disk), or back to `Online` (recovery).
    SetTargetState {
        /// The affected target.
        target: TargetId,
        /// Its state from this event's instant on.
        state: TargetState,
    },
    /// The network link of a storage server degrades to `factor` of its
    /// nominal speed (cable fault, switch-port flap): every target on
    /// that server is slowed without any of them being marked unhealthy.
    DegradeServerLink {
        /// The affected server (flat index).
        server: u32,
        /// Remaining fraction of link speed, in `(0, 1]`.
        factor: f64,
    },
    /// The server's link returns to full speed.
    RestoreServerLink {
        /// The recovered server (flat index).
        server: u32,
    },
}

/// One timestamped fault.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct FaultEvent {
    /// When the fault strikes, seconds from the start of the run.
    pub at_s: f64,
    /// What happens.
    pub kind: FaultKind,
}

/// A fault plan failed validation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum FaultPlanError {
    /// An event time was NaN, infinite or negative.
    InvalidTime(f64),
    /// A link degradation factor was outside `(0, 1]`.
    InvalidLinkFactor(f64),
    /// A target-state event carried an invalid state.
    State(StateError),
}

impl fmt::Display for FaultPlanError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FaultPlanError::InvalidTime(t) => {
                write!(f, "invalid fault time {t}: must be finite and >= 0")
            }
            FaultPlanError::InvalidLinkFactor(x) => {
                write!(f, "invalid link factor {x}: must be finite and in (0, 1]")
            }
            FaultPlanError::State(e) => write!(f, "invalid fault state: {e}"),
        }
    }
}

impl std::error::Error for FaultPlanError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            FaultPlanError::State(e) => Some(e),
            _ => None,
        }
    }
}

impl From<StateError> for FaultPlanError {
    fn from(e: StateError) -> Self {
        FaultPlanError::State(e)
    }
}

/// A deterministic timeline of faults, kept sorted by time.
///
/// Events at the same instant keep their insertion order, so plans are
/// fully deterministic. Build one with the fluent helpers:
///
/// ```
/// use beegfs_core::faults::FaultPlan;
/// use cluster::TargetId;
///
/// let plan = FaultPlan::new()
///     .target_offline(4.0, TargetId(5)).unwrap()
///     .target_recovers(12.0, TargetId(5)).unwrap();
/// assert_eq!(plan.len(), 2);
/// ```
#[derive(Debug, Clone, PartialEq, Default, Serialize)]
pub struct FaultPlan {
    events: Vec<FaultEvent>,
}

// Deserialization routes through [`FaultPlan::from_events`] so a plan
// loaded from JSON passes the same validation and time-sorting as one
// built with the fluent constructors — raw data cannot smuggle in
// `Degraded(0.0)`, negative times, or unsorted events.
impl Deserialize for FaultPlan {
    fn from_value(v: &serde::Value) -> Result<Self, serde::DeError> {
        let events = v
            .get("events")
            .ok_or_else(|| serde::DeError::custom("missing field `events`"))?;
        let events = Vec::<FaultEvent>::from_value(events)?;
        FaultPlan::from_events(events).map_err(serde::DeError::custom)
    }
}

fn validate_event(ev: &FaultEvent) -> Result<(), FaultPlanError> {
    if !(ev.at_s.is_finite() && ev.at_s >= 0.0) {
        return Err(FaultPlanError::InvalidTime(ev.at_s));
    }
    match ev.kind {
        FaultKind::SetTargetState { state, .. } => validate_state(state)?,
        FaultKind::DegradeServerLink { factor, .. } => {
            if !(factor.is_finite() && factor > 0.0 && factor <= 1.0) {
                return Err(FaultPlanError::InvalidLinkFactor(factor));
            }
        }
        FaultKind::RestoreServerLink { .. } => {}
    }
    Ok(())
}

impl FaultPlan {
    /// An empty plan (a run with no faults).
    pub fn new() -> Self {
        FaultPlan::default()
    }

    /// Build a plan from raw events, validating and time-sorting them
    /// (stable: same-instant events keep their given order).
    pub fn from_events(events: Vec<FaultEvent>) -> Result<Self, FaultPlanError> {
        let mut plan = FaultPlan { events };
        for ev in &plan.events {
            validate_event(ev)?;
        }
        plan.events.sort_by(|a, b| a.at_s.total_cmp(&b.at_s));
        Ok(plan)
    }

    /// Append a validated event, keeping the plan time-sorted.
    pub fn push(mut self, ev: FaultEvent) -> Result<Self, FaultPlanError> {
        validate_event(&ev)?;
        // Stable insertion: place after every event at the same instant.
        let pos = self.events.partition_point(|e| e.at_s <= ev.at_s);
        self.events.insert(pos, ev);
        Ok(self)
    }

    /// Target `t` becomes unreachable at `at_s`.
    pub fn target_offline(self, at_s: f64, target: TargetId) -> Result<Self, FaultPlanError> {
        self.push(FaultEvent {
            at_s,
            kind: FaultKind::SetTargetState {
                target,
                state: TargetState::Offline,
            },
        })
    }

    /// Target `t` returns to full health at `at_s`.
    pub fn target_recovers(self, at_s: f64, target: TargetId) -> Result<Self, FaultPlanError> {
        self.push(FaultEvent {
            at_s,
            kind: FaultKind::SetTargetState {
                target,
                state: TargetState::Online,
            },
        })
    }

    /// Target `t` slows to `factor` of nominal speed at `at_s` (straggler
    /// onset, RAID rebuild).
    pub fn target_degraded(
        self,
        at_s: f64,
        target: TargetId,
        factor: f64,
    ) -> Result<Self, FaultPlanError> {
        self.push(FaultEvent {
            at_s,
            kind: FaultKind::SetTargetState {
                target,
                state: TargetState::Degraded(factor),
            },
        })
    }

    /// Server `server`'s network link degrades to `factor` at `at_s`.
    pub fn link_degraded(
        self,
        at_s: f64,
        server: u32,
        factor: f64,
    ) -> Result<Self, FaultPlanError> {
        self.push(FaultEvent {
            at_s,
            kind: FaultKind::DegradeServerLink { server, factor },
        })
    }

    /// Server `server`'s link returns to full speed at `at_s`.
    pub fn link_restored(self, at_s: f64, server: u32) -> Result<Self, FaultPlanError> {
        self.push(FaultEvent {
            at_s,
            kind: FaultKind::RestoreServerLink { server },
        })
    }

    /// The events, in time order.
    pub fn events(&self) -> &[FaultEvent] {
        &self.events
    }

    /// Number of events.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// Whether the plan has no events.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// The state a target ends up in once the whole timeline has played
    /// out, if any event touches it — `None` if the plan never does.
    pub fn final_target_state(&self, target: TargetId) -> Option<TargetState> {
        self.events.iter().rev().find_map(|ev| match ev.kind {
            FaultKind::SetTargetState { target: t, state } if t == target => Some(state),
            _ => None,
        })
    }

    /// Emit the plan's *physical* timeline into an event recorder:
    /// target offline/degraded/online transitions and server-link
    /// degradations, at the instants the faults strike (clients observe
    /// them later, after the heartbeat delay — the runner records those
    /// as separate stall/retry events).
    pub fn record_into(&self, recorder: &mut dyn obs::Recorder) {
        for ev in &self.events {
            let at = simcore::time::SimTime::from_secs_f64(ev.at_s).as_nanos();
            let event = match ev.kind {
                FaultKind::SetTargetState { target, state } => match state {
                    TargetState::Offline => obs::Event::TargetOffline {
                        at,
                        target: target.0,
                    },
                    TargetState::Online => obs::Event::TargetOnline {
                        at,
                        target: target.0,
                    },
                    TargetState::Degraded(factor) => obs::Event::TargetDegraded {
                        at,
                        target: target.0,
                        factor,
                    },
                },
                FaultKind::DegradeServerLink { server, factor } => {
                    obs::Event::LinkDegraded { at, server, factor }
                }
                FaultKind::RestoreServerLink { server } => obs::Event::LinkRestored { at, server },
            };
            recorder.record(event);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn helpers_build_a_sorted_plan() {
        let plan = FaultPlan::new()
            .target_recovers(12.0, TargetId(5))
            .unwrap()
            .target_offline(4.0, TargetId(5))
            .unwrap()
            .link_degraded(6.0, 1, 0.4)
            .unwrap();
        let times: Vec<f64> = plan.events().iter().map(|e| e.at_s).collect();
        assert_eq!(times, vec![4.0, 6.0, 12.0]);
        assert_eq!(
            plan.final_target_state(TargetId(5)),
            Some(TargetState::Online)
        );
        assert_eq!(plan.final_target_state(TargetId(0)), None);
    }

    #[test]
    fn record_into_emits_the_physical_timeline() {
        let plan = FaultPlan::new()
            .target_offline(4.0, TargetId(5))
            .unwrap()
            .link_degraded(6.0, 1, 0.4)
            .unwrap()
            .target_recovers(12.0, TargetId(5))
            .unwrap()
            .link_restored(13.0, 1)
            .unwrap();
        let mut timeline = obs::Timeline::new();
        plan.record_into(&mut timeline);
        let ns = |s: f64| simcore::time::SimTime::from_secs_f64(s).as_nanos();
        assert_eq!(
            timeline.events(),
            &[
                obs::Event::TargetOffline {
                    at: ns(4.0),
                    target: 5
                },
                obs::Event::LinkDegraded {
                    at: ns(6.0),
                    server: 1,
                    factor: 0.4
                },
                obs::Event::TargetOnline {
                    at: ns(12.0),
                    target: 5
                },
                obs::Event::LinkRestored {
                    at: ns(13.0),
                    server: 1
                },
            ]
        );
    }

    #[test]
    fn same_instant_events_keep_insertion_order() {
        let plan = FaultPlan::new()
            .target_offline(5.0, TargetId(1))
            .unwrap()
            .target_recovers(5.0, TargetId(1))
            .unwrap();
        assert_eq!(
            plan.final_target_state(TargetId(1)),
            Some(TargetState::Online)
        );
    }

    #[test]
    fn invalid_events_are_rejected() {
        assert!(matches!(
            FaultPlan::new().target_offline(-1.0, TargetId(0)),
            Err(FaultPlanError::InvalidTime(_))
        ));
        assert!(matches!(
            FaultPlan::new().target_offline(f64::NAN, TargetId(0)),
            Err(FaultPlanError::InvalidTime(_))
        ));
        assert!(matches!(
            FaultPlan::new().target_degraded(1.0, TargetId(0), 0.0),
            Err(FaultPlanError::State(StateError::InvalidDegradedFactor(_)))
        ));
        assert!(matches!(
            FaultPlan::new().link_degraded(1.0, 0, 1.5),
            Err(FaultPlanError::InvalidLinkFactor(1.5))
        ));
    }

    #[test]
    fn from_events_sorts_and_validates() {
        let raw = vec![
            FaultEvent {
                at_s: 9.0,
                kind: FaultKind::RestoreServerLink { server: 0 },
            },
            FaultEvent {
                at_s: 3.0,
                kind: FaultKind::DegradeServerLink {
                    server: 0,
                    factor: 0.5,
                },
            },
        ];
        let plan = FaultPlan::from_events(raw).unwrap();
        assert_eq!(plan.events()[0].at_s, 3.0);
        assert!(FaultPlan::from_events(vec![FaultEvent {
            at_s: f64::INFINITY,
            kind: FaultKind::RestoreServerLink { server: 0 },
        }])
        .is_err());
    }

    #[test]
    fn deserialization_revalidates_and_resorts() {
        let degraded = |at_s, factor| FaultEvent {
            at_s,
            kind: FaultKind::SetTargetState {
                target: TargetId(0),
                state: TargetState::Degraded(factor),
            },
        };
        // Bypass the validating constructors: serializing an invalid plan
        // is possible, loading it back must not be.
        let bad = FaultPlan {
            events: vec![degraded(1.0, 0.0)],
        };
        let json = serde_json::to_string(&bad).unwrap();
        let err = serde_json::from_str::<FaultPlan>(&json).unwrap_err();
        assert!(err.to_string().contains("invalid"), "{err}");

        // Unsorted raw events come back time-sorted.
        let unsorted = FaultPlan {
            events: vec![degraded(9.0, 0.5), degraded(3.0, 0.5)],
        };
        let json = serde_json::to_string(&unsorted).unwrap();
        let back: FaultPlan = serde_json::from_str(&json).unwrap();
        let times: Vec<f64> = back.events().iter().map(|e| e.at_s).collect();
        assert_eq!(times, vec![3.0, 9.0]);
    }

    #[test]
    fn plans_round_trip_through_json() {
        let plan = FaultPlan::new()
            .target_offline(4.0, TargetId(5))
            .unwrap()
            .target_degraded(6.0, TargetId(2), 0.25)
            .unwrap()
            .target_recovers(12.5, TargetId(5))
            .unwrap()
            .link_degraded(2.0, 1, 0.4)
            .unwrap();
        let json = serde_json::to_string(&plan).unwrap();
        let back: FaultPlan = serde_json::from_str(&json).unwrap();
        assert_eq!(back, plan);
    }
}
