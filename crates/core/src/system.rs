//! The BeeGFS system facade.
//!
//! Owns the platform description, the management and metadata services,
//! and the per-directory striping configuration; hands out striped
//! [`FileHandle`]s. Workload engines (the `ior` crate) combine a
//! `BeeGfs` with a `cluster::Fabric` to simulate actual I/O.

use crate::chooser::{ChooserKind, TargetSelector};
use crate::error::{RestripeError, StateError, StripeError};
use crate::file::FileHandle;
use crate::services::{ManagementService, MetaService, TargetState};
use crate::stripe::StripePattern;
use cluster::{Platform, TargetId};
use simcore::rng::StreamRng;
use simcore::time::SimDuration;

/// A directory's striping configuration (what `beegfs-ctl --setpattern`
/// controls on a real deployment — administrator-only, per §I).
#[derive(Debug, Clone)]
pub struct DirConfig {
    /// Stripe count and chunk size.
    pub pattern: StripePattern,
    /// Target-selection heuristic.
    pub chooser: ChooserKind,
}

impl DirConfig {
    /// PlaFRIM's deployed configuration: stripe 4, 512 KiB, round-robin.
    pub fn plafrim_default() -> Self {
        DirConfig {
            pattern: StripePattern::PLAFRIM_DEFAULT,
            chooser: ChooserKind::RoundRobin,
        }
    }

    /// The paper's recommendation: stripe over *all* targets (lesson 6),
    /// which makes the allocation balanced regardless of the heuristic.
    pub fn paper_recommended(platform: &Platform) -> Self {
        DirConfig {
            pattern: StripePattern::new(
                platform.total_targets() as u32,
                StripePattern::PLAFRIM_DEFAULT.chunk_size,
            ),
            chooser: ChooserKind::RoundRobin,
        }
    }
}

/// A deployed BeeGFS instance over a platform.
#[derive(Debug, Clone)]
pub struct BeeGfs {
    platform: Platform,
    mgmt: ManagementService,
    meta: MetaService,
    selector: TargetSelector,
    dir: DirConfig,
    next_file_id: u64,
}

impl BeeGfs {
    /// Deploy over a platform with the given directory configuration and
    /// target registration order.
    pub fn new(platform: Platform, dir: DirConfig, registration_order: Vec<TargetId>) -> Self {
        platform.validate();
        let mgmt = ManagementService::new(&platform, registration_order.clone());
        let selector = TargetSelector::with_order(dir.chooser, &platform, registration_order);
        BeeGfs {
            platform,
            mgmt,
            meta: MetaService::plafrim(),
            selector,
            dir,
            next_file_id: 0,
        }
    }

    /// Deploy with the platform's flat (server-major) registration order.
    pub fn with_flat_order(platform: Platform, dir: DirConfig) -> Self {
        let order = platform.all_targets();
        Self::new(platform, dir, order)
    }

    /// The underlying platform.
    pub fn platform(&self) -> &Platform {
        &self.platform
    }

    /// The directory configuration.
    pub fn dir_config(&self) -> &DirConfig {
        &self.dir
    }

    /// Replace the directory configuration (admin operation).
    pub fn set_dir_config(&mut self, dir: DirConfig) {
        self.selector = TargetSelector::with_order(
            dir.chooser,
            &self.platform,
            self.mgmt.registration_order().to_vec(),
        );
        // Re-apply liveness to the fresh selector.
        for t in self.platform.all_targets() {
            self.selector.set_online(t, self.mgmt.state(t).selectable());
        }
        self.dir = dir;
    }

    /// The metadata service.
    pub fn meta(&self) -> &MetaService {
        &self.meta
    }

    /// The management service (read-only view).
    pub fn mgmt(&self) -> &ManagementService {
        &self.mgmt
    }

    /// Update a target's state; offline targets stop being selected.
    ///
    /// Fails (see [`ManagementService::set_state`]) on unknown targets or
    /// `Degraded` factors outside `(0, 1]`; the selector is only touched
    /// when the transition is accepted.
    pub fn set_target_state(&mut self, t: TargetId, s: TargetState) -> Result<(), StateError> {
        self.mgmt.set_state(t, s)?;
        self.selector.set_online(t, s.selectable());
        Ok(())
    }

    /// Override the management service's heartbeat interval (seconds):
    /// the detection delay before clients observe a state change.
    pub fn set_heartbeat_interval_s(&mut self, interval_s: f64) {
        self.mgmt.set_heartbeat_interval_s(interval_s);
    }

    /// Speed factor the target's state imposes (1.0 when online).
    pub fn target_speed_factor(&self, t: TargetId) -> f64 {
        self.mgmt.state(t).speed_factor()
    }

    /// Model the unknown file-creation history between benchmark runs
    /// (§III-C protocol): other tenants create files with the system
    /// default stripe count (4 on PlaFRIM) and earlier repetitions of the
    /// same experiment create files with this directory's stripe count,
    /// so the round-robin cursor lands on `4a + stripe * b` for unknown
    /// `a`, `b`. This is what makes stripe count 4 produce exactly the
    /// two `(1,3)` allocations the paper reports, and stripe counts
    /// 2/3/5/6 bi-modal. No-op for the stateless heuristics.
    pub fn randomize_selection_state(&mut self, rng: &mut StreamRng) {
        use rand::Rng;
        let a = u64::from(rng.gen::<u16>());
        let b = u64::from(rng.gen::<u16>());
        self.selector
            .set_cursor(4 * a + u64::from(self.dir.pattern.stripe_count) * b);
    }

    /// Model other tenants creating files *during* a run (between two of
    /// our own file creations): `K ~ Poisson(0.7)` creations at the
    /// system default stripe count of 4 advance the round-robin cursor.
    /// Calibrated so two concurrent stripe-4 applications end up on the
    /// *same* allocation roughly one third of the time (paper §IV-D) —
    /// `P(K odd) = (1 - e^{-1.4})/2 = 0.38`.
    pub fn simulate_tenant_churn(&mut self, rng: &mut StreamRng) {
        let k = simcore::dist::poisson(0.7, rng);
        self.selector.advance_cursor(4 * k);
    }

    /// Create a file in the configured directory: choose targets, pay the
    /// metadata cost, return the handle and the creation latency.
    ///
    /// Fails with [`StripeError::NotEnoughTargets`] when the directory's
    /// stripe count exceeds the number of online targets.
    pub fn create_file(
        &mut self,
        rng: &mut StreamRng,
    ) -> Result<(FileHandle, SimDuration), StripeError> {
        let targets = self
            .selector
            .choose(&self.platform, self.dir.pattern, rng)?;
        let id = self.next_file_id;
        self.next_file_id += 1;
        let latency = self.meta.create_cost(self.dir.pattern.stripe_count);
        Ok((FileHandle::new(id, targets, self.dir.pattern), latency))
    }

    /// Create a file with an explicit target list (used by experiments
    /// that pin the allocation, e.g. the Fig. 13 shared-vs-disjoint
    /// comparison).
    ///
    /// Fails with [`StripeError::OfflineTarget`] if the list names a
    /// target that is not selectable, or [`StripeError::EmptyTargetList`]
    /// if it is empty.
    pub fn create_file_on(
        &mut self,
        targets: Vec<TargetId>,
    ) -> Result<(FileHandle, SimDuration), StripeError> {
        if targets.is_empty() {
            return Err(StripeError::EmptyTargetList);
        }
        for t in &targets {
            if !self.mgmt.state(*t).selectable() {
                return Err(StripeError::OfflineTarget(*t));
            }
        }
        let pattern = StripePattern::new(targets.len() as u32, self.dir.pattern.chunk_size);
        let id = self.next_file_id;
        self.next_file_id += 1;
        let latency = self.meta.create_cost(pattern.stripe_count);
        Ok((FileHandle::new(id, targets, pattern), latency))
    }

    /// Restripe an open file onto a new target list mid-flight.
    ///
    /// Chunks already issued on the old stripe set drain where they are;
    /// only not-yet-issued chunks move (see [`crate::file::restripe_split`]
    /// for the byte plan). The returned handle keeps the file's id — a
    /// restripe is a metadata rewrite, not a new file — and the latency
    /// is the metadata cost of rewriting the stripe pattern (same cost
    /// model as creating at the new width).
    ///
    /// Deliberately consumes **no** RNG and advances **no** selector
    /// state: a restripe is an explicit administrative placement, so
    /// common-random-number streams shared with other policies are
    /// untouched and decision logs stay byte-stable.
    ///
    /// Fails with [`RestripeError::OfflineTarget`] when the new list
    /// names a target the fault timeline has already evicted, or
    /// [`RestripeError::InvalidProgress`] when `issued_bytes` exceeds
    /// `total_bytes`.
    pub fn restripe_file(
        &mut self,
        file: &FileHandle,
        new_targets: Vec<TargetId>,
        total_bytes: u64,
        issued_bytes: u64,
    ) -> Result<(FileHandle, SimDuration), RestripeError> {
        if new_targets.is_empty() {
            return Err(RestripeError::EmptyTargetList);
        }
        for t in &new_targets {
            if !self.mgmt.state(*t).selectable() {
                return Err(RestripeError::OfflineTarget(*t));
            }
        }
        if issued_bytes > total_bytes {
            return Err(RestripeError::InvalidProgress {
                issued: issued_bytes,
                total: total_bytes,
            });
        }
        let pattern = StripePattern::new(new_targets.len() as u32, file.pattern.chunk_size);
        let latency = self.meta.create_cost(pattern.stripe_count);
        Ok((FileHandle::new(file.id, new_targets, pattern), latency))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::alloc::Allocation;
    use crate::chooser::plafrim_registration_order;
    use cluster::presets;
    use simcore::rng::RngFactory;

    fn rng() -> StreamRng {
        RngFactory::new(21).stream("system-tests", 0)
    }

    fn plafrim_fs() -> BeeGfs {
        BeeGfs::new(
            presets::plafrim_ethernet(),
            DirConfig::plafrim_default(),
            plafrim_registration_order(),
        )
    }

    #[test]
    fn create_file_uses_dir_pattern() {
        let mut fs = plafrim_fs();
        let mut r = rng();
        let (f, latency) = fs.create_file(&mut r).unwrap();
        assert_eq!(f.targets.len(), 4);
        assert_eq!(f.pattern, StripePattern::PLAFRIM_DEFAULT);
        assert!(latency.as_secs_f64() > 0.0);
    }

    #[test]
    fn file_ids_are_unique() {
        let mut fs = plafrim_fs();
        let mut r = rng();
        let (a, _) = fs.create_file(&mut r).unwrap();
        let (b, _) = fs.create_file(&mut r).unwrap();
        assert_ne!(a.id, b.id);
    }

    #[test]
    fn plafrim_default_always_one_three() {
        let mut fs = plafrim_fs();
        let mut r = rng();
        for _ in 0..20 {
            fs.randomize_selection_state(&mut r);
            let (f, _) = fs.create_file(&mut r).unwrap();
            let a = Allocation::classify(fs.platform(), &f.targets);
            assert_eq!(a.label(), "(1,3)");
        }
    }

    #[test]
    fn recommended_config_is_always_balanced() {
        let platform = presets::plafrim_ethernet();
        let dir = DirConfig::paper_recommended(&platform);
        assert_eq!(dir.pattern.stripe_count, 8);
        let mut fs = BeeGfs::new(platform, dir, plafrim_registration_order());
        let mut r = rng();
        let (f, _) = fs.create_file(&mut r).unwrap();
        let a = Allocation::classify(fs.platform(), &f.targets);
        assert_eq!(a.label(), "(4,4)");
    }

    #[test]
    fn offline_target_excluded_from_new_files() {
        let mut fs = plafrim_fs();
        let mut r = rng();
        fs.set_target_state(TargetId(4), TargetState::Offline)
            .unwrap();
        for _ in 0..20 {
            let (f, _) = fs.create_file(&mut r).unwrap();
            assert!(!f.targets.contains(&TargetId(4)));
        }
        assert_eq!(fs.target_speed_factor(TargetId(4)), 0.0);
    }

    #[test]
    fn degraded_target_still_selected_but_slow() {
        let mut fs = plafrim_fs();
        fs.set_target_state(TargetId(0), TargetState::Degraded(0.4))
            .unwrap();
        assert_eq!(fs.target_speed_factor(TargetId(0)), 0.4);
        // Degraded targets remain selectable.
        let mut r = rng();
        let mut seen = false;
        for _ in 0..20 {
            fs.randomize_selection_state(&mut r);
            let (f, _) = fs.create_file(&mut r).unwrap();
            seen |= f.targets.contains(&TargetId(0));
        }
        assert!(seen, "degraded target should still appear in stripings");
    }

    #[test]
    fn pinned_allocation_create() {
        let mut fs = plafrim_fs();
        let targets = vec![TargetId(0), TargetId(1), TargetId(4), TargetId(5)];
        let (f, _) = fs.create_file_on(targets.clone()).unwrap();
        assert_eq!(f.targets, targets);
        let a = Allocation::classify(fs.platform(), &f.targets);
        assert_eq!(a.label(), "(2,2)");
    }

    #[test]
    fn pinned_allocation_rejects_offline() {
        let mut fs = plafrim_fs();
        fs.set_target_state(TargetId(1), TargetState::Offline)
            .unwrap();
        let err = fs
            .create_file_on(vec![TargetId(0), TargetId(1)])
            .unwrap_err();
        assert_eq!(err, StripeError::OfflineTarget(TargetId(1)));
        assert!(fs.create_file_on(Vec::new()).is_err());
    }

    #[test]
    fn invalid_state_transitions_leave_selector_untouched() {
        let mut fs = plafrim_fs();
        assert!(matches!(
            fs.set_target_state(TargetId(0), TargetState::Degraded(0.0)),
            Err(StateError::InvalidDegradedFactor(_))
        ));
        let mut r = rng();
        // Target 0 must still be selectable at full speed.
        assert_eq!(fs.target_speed_factor(TargetId(0)), 1.0);
        let mut seen = false;
        for _ in 0..20 {
            fs.randomize_selection_state(&mut r);
            let (f, _) = fs.create_file(&mut r).unwrap();
            seen |= f.targets.contains(&TargetId(0));
        }
        assert!(seen);
    }

    #[test]
    fn create_fails_when_too_few_targets_online() {
        let mut fs = plafrim_fs();
        let mut r = rng();
        for t in 0..5u32 {
            fs.set_target_state(TargetId(t), TargetState::Offline)
                .unwrap();
        }
        // Directory stripe count is 4 but only 3 targets remain online.
        let err = fs.create_file(&mut r).unwrap_err();
        assert_eq!(
            err,
            StripeError::NotEnoughTargets {
                wanted: 4,
                online: 3
            }
        );
    }

    #[test]
    fn restripe_keeps_id_and_rejects_offline() {
        use crate::error::RestripeError;
        let mut fs = plafrim_fs();
        let mut r = rng();
        let (f, _) = fs.create_file(&mut r).unwrap();
        let wide: Vec<TargetId> = fs.platform().all_targets();
        let (g, latency) = fs.restripe_file(&f, wide.clone(), 8 * 1024, 1024).unwrap();
        assert_eq!(g.id, f.id, "restripe keeps the file id");
        assert_eq!(g.targets, wide);
        assert_eq!(g.pattern.stripe_count, 8);
        assert_eq!(g.pattern.chunk_size, f.pattern.chunk_size);
        assert!(latency.as_secs_f64() > 0.0);

        // Fault-timeline interaction: an evicted target is not a valid
        // restripe destination.
        fs.set_target_state(TargetId(2), TargetState::Offline)
            .unwrap();
        let err = fs.restripe_file(&f, wide, 8 * 1024, 1024).unwrap_err();
        assert_eq!(err, RestripeError::OfflineTarget(TargetId(2)));

        assert_eq!(
            fs.restripe_file(&f, Vec::new(), 8, 0).unwrap_err(),
            RestripeError::EmptyTargetList
        );
        assert_eq!(
            fs.restripe_file(&f, vec![TargetId(0)], 8, 9).unwrap_err(),
            RestripeError::InvalidProgress {
                issued: 9,
                total: 8
            }
        );
    }

    #[test]
    fn restripe_consumes_no_rng_or_selector_state() {
        // Two deployments, identical history; one restripes, one does
        // not. The *next* chooser-driven creation must be identical —
        // the CRN-preservation guarantee.
        let mut a = plafrim_fs();
        let mut b = plafrim_fs();
        let mut ra = rng();
        let mut rb = rng();
        let (fa, _) = a.create_file(&mut ra).unwrap();
        let (_fb, _) = b.create_file(&mut rb).unwrap();
        let _ = a
            .restripe_file(&fa, a.platform().all_targets(), 1024, 512)
            .unwrap();
        let (na, _) = a.create_file(&mut ra).unwrap();
        let (nb, _) = b.create_file(&mut rb).unwrap();
        assert_eq!(na.targets, nb.targets);
    }

    #[test]
    fn set_dir_config_switches_chooser() {
        let mut fs = plafrim_fs();
        let mut r = rng();
        fs.set_dir_config(DirConfig {
            pattern: StripePattern::new(4, 512 * 1024),
            chooser: ChooserKind::Balanced,
        });
        for _ in 0..10 {
            let (f, _) = fs.create_file(&mut r).unwrap();
            let a = Allocation::classify(fs.platform(), &f.targets);
            assert_eq!(a.label(), "(2,2)");
        }
    }

    #[test]
    fn set_dir_config_preserves_offline_state() {
        let mut fs = plafrim_fs();
        let mut r = rng();
        fs.set_target_state(TargetId(7), TargetState::Offline)
            .unwrap();
        fs.set_dir_config(DirConfig {
            pattern: StripePattern::new(7, 512 * 1024),
            chooser: ChooserKind::Random,
        });
        for _ in 0..10 {
            let (f, _) = fs.create_file(&mut r).unwrap();
            assert!(!f.targets.contains(&TargetId(7)));
        }
    }
}
