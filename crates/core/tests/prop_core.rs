//! Property tests of the BeeGFS model invariants: striping conservation,
//! allocation classification, and chooser validity.

use beegfs_core::{
    plafrim_registration_order, Allocation, ChooserKind, FileHandle, StripePattern, TargetSelector,
};
use cluster::{presets, TargetId};
use proptest::prelude::*;
use simcore::rng::RngFactory;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn bytes_per_slot_conserves_and_bounds(
        stripe in 1u32..=16,
        chunk_pow in 12u32..=21, // 4 KiB .. 2 MiB chunks
        offset in 0u64..(1 << 36),
        len in 0u64..(1 << 32),
    ) {
        let p = StripePattern::new(stripe, 1 << chunk_pow);
        let slots = p.bytes_per_slot(offset, len);
        prop_assert_eq!(slots.len(), stripe as usize);
        prop_assert_eq!(slots.iter().sum::<u64>(), len);
        // No slot exceeds its ideal share by more than one chunk.
        let ideal = len / u64::from(stripe);
        for &b in &slots {
            prop_assert!(b <= ideal + 2 * p.chunk_size,
                "slot got {b} of {len} (ideal {ideal})");
        }
    }

    #[test]
    fn bytes_per_slot_is_additive_in_ranges(
        stripe in 1u32..=8,
        offset in 0u64..(1 << 30),
        a in 0u64..(1 << 26),
        b in 0u64..(1 << 26),
    ) {
        // Splitting a contiguous write anywhere distributes identically:
        // per-slot(o, a+b) == per-slot(o, a) + per-slot(o+a, b).
        let p = StripePattern::new(stripe, 512 * 1024);
        let whole = p.bytes_per_slot(offset, a + b);
        let first = p.bytes_per_slot(offset, a);
        let second = p.bytes_per_slot(offset + a, b);
        for i in 0..stripe as usize {
            prop_assert_eq!(whole[i], first[i] + second[i], "slot {}", i);
        }
    }

    #[test]
    fn slot_of_is_consistent_with_bytes_per_slot(
        stripe in 1u32..=8,
        offset in 0u64..(1 << 30),
    ) {
        // A 1-byte write lands exactly on slot_of(offset).
        let p = StripePattern::new(stripe, 512 * 1024);
        let slots = p.bytes_per_slot(offset, 1);
        let hit: Vec<usize> = slots.iter().enumerate()
            .filter(|(_, &b)| b > 0).map(|(i, _)| i).collect();
        prop_assert_eq!(hit, vec![p.slot_of(offset) as usize]);
    }

    #[test]
    fn file_handle_distribution_matches_pattern(
        stripe in 1u32..=8,
        offset in 0u64..(1 << 28),
        len in 1u64..(1 << 28),
    ) {
        let p = StripePattern::new(stripe, 512 * 1024);
        let targets: Vec<TargetId> = (0..stripe).map(TargetId).collect();
        let f = FileHandle::new(0, targets.clone(), p);
        let by_target = f.bytes_per_target(offset, len);
        let by_slot = p.bytes_per_slot(offset, len);
        for (slot, (t, bytes)) in by_target.iter().enumerate() {
            prop_assert_eq!(*t, targets[slot]);
            prop_assert_eq!(*bytes, by_slot[slot]);
        }
    }

    #[test]
    fn allocation_classification_invariants(
        sel in prop::collection::btree_set(0u32..8, 0..=8),
    ) {
        let platform = presets::plafrim_ethernet();
        let selection: Vec<TargetId> = sel.into_iter().map(TargetId).collect();
        let a = Allocation::classify(&platform, &selection);
        prop_assert_eq!(a.total(), selection.len());
        let (min, max) = a.min_max();
        prop_assert!(min <= max);
        prop_assert!(max <= 4, "a server has only 4 targets");
        prop_assert!(a.balance() >= 0.0 && a.balance() <= 1.0);
        prop_assert_eq!(a.is_balanced(), min == max);
        prop_assert_eq!(a.label(), format!("({min},{max})"));
    }

    #[test]
    fn every_chooser_returns_valid_selections(
        kind_idx in 0usize..3,
        stripe in 1u32..=8,
        cursor in 0u64..10_000,
        seed in 0u64..500,
    ) {
        let kind = [ChooserKind::RoundRobin, ChooserKind::Random, ChooserKind::Balanced][kind_idx];
        let platform = presets::plafrim_ethernet();
        let mut sel = TargetSelector::with_order(kind, &platform, plafrim_registration_order());
        sel.set_cursor(cursor);
        let mut rng = RngFactory::new(seed).stream("prop-chooser", 0);
        let pattern = StripePattern::new(stripe, 512 * 1024);
        let chosen = sel.choose(&platform, pattern, &mut rng).unwrap();
        prop_assert_eq!(chosen.len(), stripe as usize);
        let mut dedup = chosen.clone();
        dedup.sort();
        dedup.dedup();
        prop_assert_eq!(dedup.len(), stripe as usize, "duplicates in {:?}", chosen);
        prop_assert!(chosen.iter().all(|t| t.index() < 8));
    }

    #[test]
    fn round_robin_window_is_contiguous_in_registration_order(
        stripe in 1u32..=8,
        cursor in 0u64..1_000,
    ) {
        // The RR selection is always `stripe` consecutive entries of the
        // registration order starting at cursor % 8.
        let platform = presets::plafrim_ethernet();
        let order = plafrim_registration_order();
        let mut sel = TargetSelector::with_order(
            ChooserKind::RoundRobin, &platform, order.clone());
        sel.set_cursor(cursor);
        let mut rng = RngFactory::new(1).stream("prop-rr", 0);
        let chosen = sel.choose(&platform, StripePattern::new(stripe, 512 * 1024), &mut rng).unwrap();
        let start = (cursor % 8) as usize;
        let expected: Vec<TargetId> =
            (0..stripe as usize).map(|k| order[(start + k) % 8]).collect();
        prop_assert_eq!(chosen, expected);
    }

    #[test]
    fn balanced_chooser_minimizes_imbalance(
        stripe in 1u32..=8,
        seed in 0u64..200,
    ) {
        let platform = presets::plafrim_ethernet();
        let mut sel = TargetSelector::new(ChooserKind::Balanced, &platform);
        let mut rng = RngFactory::new(seed).stream("prop-bal", 0);
        let chosen = sel.choose(&platform, StripePattern::new(stripe, 512 * 1024), &mut rng).unwrap();
        let (min, max) = Allocation::classify(&platform, &chosen).min_max();
        prop_assert!(max - min <= 1, "({min},{max}) for stripe {stripe}");
    }
}
