//! # storage — device models for the I/O-path simulator
//!
//! Models every storage component that appears in the paper's PlaFRIM
//! deployment (§III-A):
//!
//! * [`hdd::HddModel`] — mechanical disk: RPM, seek, sequential rate
//!   (preset: the Toshiba AL15SEB18E0Y drives backing each OST);
//! * [`raid::Raid6Array`] / [`raid::Raid1Array`] — array geometry and the
//!   resulting full-stripe write bandwidth (each PlaFRIM OST is 12 HDDs in
//!   RAID-6; each MDT is 2 SSDs in RAID-1);
//! * [`ssd::SsdModel`] — metadata target devices (preset: Samsung
//!   MZILT1T6HAJQ0D3);
//! * [`ost::OstProfile`] — an Object Storage Target as the simulator sees
//!   it: a RAID array behind a controller, exposing a *concurrency-
//!   dependent* throughput curve (`simcore::flow::CapacityModel::Saturating`)
//!   — the mechanism behind the paper's lesson 6 ("more OSTs require more
//!   compute nodes");
//! * [`ost::OssBackendProfile`] — the per-server backend (controller/PCIe/
//!   kernel) ceiling shared by all OSTs of one OSS;
//! * [`noise::VariabilityModel`] — stochastic run-to-run device speed
//!   variation (Cao et al., FAST'17), the source of Scenario 2's large
//!   spread (paper Fig. 6b).

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod hdd;
pub mod noise;
pub mod ost;
pub mod raid;
pub mod ssd;

pub use hdd::HddModel;
pub use noise::VariabilityModel;
pub use ost::{AccessMode, OssBackendProfile, OstProfile};
pub use raid::{Raid1Array, Raid6Array};
pub use ssd::SsdModel;
