//! Solid-state drive model (metadata targets).

use serde::{Deserialize, Serialize};
use simcore::units::{Bandwidth, GIB};

/// A SAS/NVMe SSD described by its data-sheet throughput and latency.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SsdModel {
    /// Marketing name, for reports.
    pub name: String,
    /// Sequential read rate, MiB/s.
    pub read_mib_s: f64,
    /// Sequential write rate, MiB/s.
    pub write_mib_s: f64,
    /// Typical small-operation latency, microseconds.
    pub op_latency_us: f64,
    /// Formatted capacity in bytes.
    pub capacity_bytes: u64,
}

impl SsdModel {
    /// Samsung MZILT1T6HAJQ0D3 (PM1643a family, 1.6 TB SAS): the PlaFRIM
    /// metadata-target device.
    pub fn samsung_mzilt1t6() -> Self {
        SsdModel {
            name: "Samsung MZILT1T6HAJQ0D3".to_string(),
            read_mib_s: 2_000.0,
            write_mib_s: 1_300.0,
            op_latency_us: 80.0,
            capacity_bytes: 1_600 * GIB / 1_000 * 1_000, // 1.6 TB nominal
        }
    }

    /// Sequential read bandwidth.
    pub fn read_bandwidth(&self) -> Bandwidth {
        Bandwidth::from_mib_per_sec(self.read_mib_s)
    }

    /// Sequential write bandwidth.
    pub fn write_bandwidth(&self) -> Bandwidth {
        Bandwidth::from_mib_per_sec(self.write_mib_s)
    }

    /// Operations per second for latency-bound metadata work.
    pub fn metadata_ops_per_sec(&self) -> f64 {
        assert!(self.op_latency_us > 0.0, "SSD with zero op latency");
        1e6 / self.op_latency_us
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn samsung_preset_sane() {
        let s = SsdModel::samsung_mzilt1t6();
        assert!(s.read_bandwidth().mib_per_sec() > s.write_bandwidth().mib_per_sec());
        assert!(s.capacity_bytes > GIB);
    }

    #[test]
    fn metadata_ops_from_latency() {
        let s = SsdModel::samsung_mzilt1t6();
        assert!((s.metadata_ops_per_sec() - 12_500.0).abs() < 1.0);
    }

    #[test]
    #[should_panic(expected = "zero op latency")]
    fn zero_latency_rejected() {
        let mut s = SsdModel::samsung_mzilt1t6();
        s.op_latency_us = 0.0;
        let _ = s.metadata_ops_per_sec();
    }
}
