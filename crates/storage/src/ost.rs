//! Object Storage Target and OSS-backend profiles.
//!
//! These are the storage-side *resource descriptions* consumed by the
//! platform builder in the `cluster` crate: each OST becomes one
//! concurrency-dependent resource in the flow network, and each OSS
//! contributes one shared backend resource that all of its OSTs funnel
//! through.

use crate::raid::Raid6Array;
use serde::{Deserialize, Serialize};
use simcore::flow::CapacityModel;
use simcore::units::Bandwidth;

/// An Object Storage Target as the simulator models it.
///
/// The OST's sustainable throughput depends on how many concurrent
/// writers feed it: a lone writer cannot keep a 12-disk RAID-6 pipeline
/// busy (request gaps, cache flushes), while many concurrent streams
/// saturate it. The saturating curve `peak * q / (q + q_half)` captures
/// this; `q_half` is calibrated per platform preset.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct OstProfile {
    /// The backing array.
    pub array: Raid6Array,
    /// Queue depth (concurrent flows) at which half of peak is reached.
    pub q_half: f64,
    /// Optional override of the array-derived peak (bytes/s); used when a
    /// deployment's measured OST ceiling differs from the data-sheet
    /// derivation.
    pub peak_override: Option<f64>,
}

impl OstProfile {
    /// Profile from an array with a calibrated `q_half`.
    ///
    /// # Panics
    /// Panics if `q_half` is negative or non-finite.
    pub fn new(array: Raid6Array, q_half: f64) -> Self {
        assert!(
            q_half.is_finite() && q_half >= 0.0,
            "invalid q_half {q_half}"
        );
        OstProfile {
            array,
            q_half,
            peak_override: None,
        }
    }

    /// Replace the derived peak with a measured value.
    pub fn with_peak(mut self, peak: Bandwidth) -> Self {
        self.peak_override = Some(peak.bytes_per_sec());
        self
    }

    /// Peak write bandwidth (override if present, else array-derived).
    pub fn peak_write_bandwidth(&self) -> Bandwidth {
        match self.peak_override {
            Some(p) => Bandwidth::from_bytes_per_sec(p),
            None => self.array.full_stripe_write_bandwidth(),
        }
    }

    /// The flow-network capacity model for this OST.
    pub fn capacity_model(&self) -> CapacityModel {
        CapacityModel::Saturating {
            peak: self.peak_write_bandwidth().bytes_per_sec(),
            q_half: self.q_half,
        }
    }

    /// Throughput at queue depth `q` (diagnostics and calibration).
    pub fn throughput_at_depth(&self, q: usize) -> Bandwidth {
        let peak = self.peak_write_bandwidth().bytes_per_sec();
        if q == 0 {
            Bandwidth::ZERO
        } else {
            let qf = q as f64;
            Bandwidth::from_bytes_per_sec(peak * qf / (qf + self.q_half))
        }
    }
}

/// The shared per-OSS backend: RAID controller, PCIe lanes, kernel block
/// layer. All OSTs of one OSS share it, which is why four OSTs on one
/// server deliver less than 4x a single OST's peak.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct OssBackendProfile {
    /// Aggregate ceiling in bytes/second.
    pub cap_bytes_per_sec: f64,
}

impl OssBackendProfile {
    /// A backend with the given ceiling.
    ///
    /// # Panics
    /// Panics on non-positive or non-finite caps.
    pub fn new(cap: Bandwidth) -> Self {
        assert!(
            cap.bytes_per_sec() > 0.0,
            "OSS backend cap must be positive"
        );
        OssBackendProfile {
            cap_bytes_per_sec: cap.bytes_per_sec(),
        }
    }

    /// The ceiling as a [`Bandwidth`].
    pub fn cap(&self) -> Bandwidth {
        Bandwidth::from_bytes_per_sec(self.cap_bytes_per_sec)
    }

    /// The flow-network capacity model for this backend.
    pub fn capacity_model(&self) -> CapacityModel {
        CapacityModel::Fixed(self.cap_bytes_per_sec)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn peak_defaults_to_array_derivation() {
        let p = OstProfile::new(Raid6Array::plafrim_ost(), 4.0);
        assert_eq!(
            p.peak_write_bandwidth().bytes_per_sec(),
            p.array.full_stripe_write_bandwidth().bytes_per_sec()
        );
    }

    #[test]
    fn peak_override_wins() {
        let p = OstProfile::new(Raid6Array::plafrim_ost(), 4.0)
            .with_peak(Bandwidth::from_mib_per_sec(2000.0));
        assert!((p.peak_write_bandwidth().mib_per_sec() - 2000.0).abs() < 1e-9);
    }

    #[test]
    fn throughput_curve_saturates() {
        let p = OstProfile::new(Raid6Array::plafrim_ost(), 4.0);
        let peak = p.peak_write_bandwidth().bytes_per_sec();
        assert_eq!(p.throughput_at_depth(0).bytes_per_sec(), 0.0);
        assert!((p.throughput_at_depth(4).bytes_per_sec() - peak / 2.0).abs() < 1e-6);
        assert!(p.throughput_at_depth(64).bytes_per_sec() > 0.9 * peak);
        assert!(p.throughput_at_depth(64).bytes_per_sec() < peak);
    }

    #[test]
    fn capacity_model_matches_curve() {
        let p = OstProfile::new(Raid6Array::plafrim_ost(), 2.0);
        match p.capacity_model() {
            CapacityModel::Saturating { peak, q_half } => {
                assert_eq!(peak, p.peak_write_bandwidth().bytes_per_sec());
                assert_eq!(q_half, 2.0);
            }
            other => panic!("expected Saturating, got {other:?}"),
        }
    }

    #[test]
    fn backend_model_is_fixed() {
        let b = OssBackendProfile::new(Bandwidth::from_mib_per_sec(4400.0));
        match b.capacity_model() {
            CapacityModel::Fixed(c) => assert_eq!(c, b.cap_bytes_per_sec),
            other => panic!("expected Fixed, got {other:?}"),
        }
    }

    #[test]
    #[should_panic(expected = "must be positive")]
    fn zero_backend_cap_rejected() {
        let _ = OssBackendProfile::new(Bandwidth::ZERO);
    }
}

/// Direction of access, used to pick the device's throughput profile.
///
/// The paper measures writes (§III-B: "once files are written, changing
/// the stripe count requires data migration"); reads are its declared
/// future work, and Chowdhury et al.'s results suggest the same
/// behaviours. The read-side constants below are *projections* for that
/// extension: RAID-6 large reads skip the parity-update penalty, so the
/// sustained rate is higher than for writes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, serde::Serialize, serde::Deserialize)]
pub enum AccessMode {
    /// Write path (the paper's measurements).
    Write,
    /// Read path (the paper's future work, modelled as a projection).
    Read,
}

impl OstProfile {
    /// Peak large-sequential *read* bandwidth: no read-modify-write or
    /// parity computation, so the controller sustains a higher fraction
    /// of the spindle aggregate than for writes (~15% more in practice).
    pub fn peak_read_bandwidth(&self) -> Bandwidth {
        self.peak_write_bandwidth() * 1.15
    }

    /// Peak bandwidth for a given access mode.
    pub fn peak_bandwidth(&self, mode: AccessMode) -> Bandwidth {
        match mode {
            AccessMode::Write => self.peak_write_bandwidth(),
            AccessMode::Read => self.peak_read_bandwidth(),
        }
    }

    /// The flow-network capacity model for this OST in a given mode.
    pub fn capacity_model_for(&self, mode: AccessMode) -> CapacityModel {
        CapacityModel::Saturating {
            peak: self.peak_bandwidth(mode).bytes_per_sec(),
            q_half: self.q_half,
        }
    }
}

#[cfg(test)]
mod mode_tests {
    use super::*;
    use crate::raid::Raid6Array;

    #[test]
    fn reads_are_faster_than_writes() {
        let p = OstProfile::new(Raid6Array::plafrim_ost(), 24.0);
        assert!(p.peak_read_bandwidth().bytes_per_sec() > p.peak_write_bandwidth().bytes_per_sec());
        assert_eq!(
            p.peak_bandwidth(AccessMode::Write).bytes_per_sec(),
            p.peak_write_bandwidth().bytes_per_sec()
        );
    }

    #[test]
    fn mode_specific_capacity_models() {
        let p = OstProfile::new(Raid6Array::plafrim_ost(), 24.0);
        match (
            p.capacity_model_for(AccessMode::Write),
            p.capacity_model_for(AccessMode::Read),
        ) {
            (
                CapacityModel::Saturating {
                    peak: w,
                    q_half: qw,
                },
                CapacityModel::Saturating {
                    peak: r,
                    q_half: qr,
                },
            ) => {
                assert!(r > w);
                assert_eq!(qw, qr);
            }
            other => panic!("unexpected models {other:?}"),
        }
    }
}
