//! RAID array geometry and bandwidth derivation.

use crate::hdd::HddModel;
use crate::ssd::SsdModel;
use serde::{Deserialize, Serialize};
use simcore::units::Bandwidth;

/// A RAID-6 array: `n` identical member disks, two of which hold parity
/// per stripe (rotating). Large sequential writes are full-stripe writes,
/// so the usable write bandwidth is `(n - 2) x member_bandwidth`, scaled
/// by a controller efficiency factor (parity computation, cache flushes,
/// firmware overheads).
///
/// PlaFRIM: each OST is 12 such disks (10 data + 2 parity).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Raid6Array {
    /// Member disk model.
    pub disk: HddModel,
    /// Total number of member disks (data + 2 parity).
    pub disks: u32,
    /// Fraction of the theoretical full-stripe rate the controller
    /// actually sustains (0, 1].
    pub controller_efficiency: f64,
}

impl Raid6Array {
    /// Build an array, validating the geometry.
    ///
    /// # Panics
    /// Panics unless `disks >= 4` (RAID-6 needs at least 2 data + 2
    /// parity) and `0 < controller_efficiency <= 1`.
    pub fn new(disk: HddModel, disks: u32, controller_efficiency: f64) -> Self {
        assert!(disks >= 4, "RAID-6 requires at least 4 disks, got {disks}");
        assert!(
            controller_efficiency > 0.0 && controller_efficiency <= 1.0,
            "controller efficiency must be in (0,1], got {controller_efficiency}"
        );
        Raid6Array {
            disk,
            disks,
            controller_efficiency,
        }
    }

    /// The PlaFRIM OST array: 12 Toshiba 10.5k drives, RAID-6.
    ///
    /// The controller efficiency is calibrated so the array's sustained
    /// full-stripe write rate is ~1.7 GiB/s, consistent with the aggregate
    /// behaviour the paper measures in Scenario 2 (8 OSTs peaking around
    /// 8-9 GiB/s with server backends as the next ceiling, and a single
    /// OST saturating at ~1.76 GiB/s).
    pub fn plafrim_ost() -> Self {
        Raid6Array::new(HddModel::toshiba_al15seb18e0y(), 12, 0.755)
    }

    /// Number of data (non-parity) disks per stripe.
    pub fn data_disks(&self) -> u32 {
        self.disks - 2
    }

    /// Usable capacity in bytes.
    pub fn capacity_bytes(&self) -> u64 {
        u64::from(self.data_disks()) * self.disk.capacity_bytes
    }

    /// Sustained full-stripe (large sequential) write bandwidth.
    pub fn full_stripe_write_bandwidth(&self) -> Bandwidth {
        self.disk.sequential_bandwidth()
            * (f64::from(self.data_disks()) * self.controller_efficiency)
    }

    /// Small-write (read-modify-write) bandwidth: each logical write costs
    /// reading and rewriting data + both parities, a 6x I/O amplification
    /// in the classical RMW path (3 reads + 3 writes).
    pub fn small_write_bandwidth(&self, request_bytes: u64) -> Bandwidth {
        let member = self.disk.random_bandwidth(request_bytes);
        // RMW: 3 reads + 3 writes of request-sized blocks across members.
        member * (1.0 / 6.0) * f64::from(self.data_disks()).min(4.0)
    }
}

/// A RAID-1 mirror of two identical SSDs (the PlaFRIM MDT layout).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Raid1Array {
    /// Member SSD model.
    pub ssd: SsdModel,
}

impl Raid1Array {
    /// Build a two-way mirror.
    pub fn new(ssd: SsdModel) -> Self {
        Raid1Array { ssd }
    }

    /// The PlaFRIM MDT array: 2 Samsung MZILT1T6HAJQ0D3 in RAID-1.
    pub fn plafrim_mdt() -> Self {
        Raid1Array::new(SsdModel::samsung_mzilt1t6())
    }

    /// Usable capacity (one member's worth).
    pub fn capacity_bytes(&self) -> u64 {
        self.ssd.capacity_bytes
    }

    /// Write bandwidth: both mirrors must persist, so one member's rate.
    pub fn write_bandwidth(&self) -> Bandwidth {
        self.ssd.write_bandwidth()
    }

    /// Read bandwidth: reads can be served by either mirror.
    pub fn read_bandwidth(&self) -> Bandwidth {
        self.ssd.read_bandwidth() * 2.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use simcore::units::{GIB, KIB, TIB};

    #[test]
    fn plafrim_ost_geometry() {
        let a = Raid6Array::plafrim_ost();
        assert_eq!(a.disks, 12);
        assert_eq!(a.data_disks(), 10);
        // 10 x 1.8 TB = 18 TB usable; 8 OSTs -> 144 TB ~ paper's "131 TB
        // available to clients" after fs overhead.
        assert!(a.capacity_bytes() > 15 * TIB);
    }

    #[test]
    fn full_stripe_bandwidth_scales_with_data_disks() {
        let a = Raid6Array::plafrim_ost();
        let expected = 225.0 * 10.0 * 0.755;
        assert!((a.full_stripe_write_bandwidth().mib_per_sec() - expected).abs() < 1e-6);
        // ~1.7 GiB/s — the OST-level peak the calibration targets.
        assert!((a.full_stripe_write_bandwidth().mib_per_sec() - 1700.0).abs() < 64.0);
    }

    #[test]
    fn small_writes_are_much_slower_than_full_stripe() {
        let a = Raid6Array::plafrim_ost();
        let small = a.small_write_bandwidth(4 * KIB);
        assert!(small.mib_per_sec() < 0.01 * a.full_stripe_write_bandwidth().mib_per_sec());
    }

    #[test]
    #[should_panic(expected = "at least 4 disks")]
    fn raid6_needs_four_disks() {
        let _ = Raid6Array::new(HddModel::nearline_7200(), 3, 0.9);
    }

    #[test]
    #[should_panic(expected = "efficiency")]
    fn efficiency_must_be_positive() {
        let _ = Raid6Array::new(HddModel::nearline_7200(), 12, 0.0);
    }

    #[test]
    fn mirror_write_is_single_member_read_is_double() {
        let m = Raid1Array::plafrim_mdt();
        assert_eq!(
            m.write_bandwidth().bytes_per_sec(),
            m.ssd.write_bandwidth().bytes_per_sec()
        );
        assert_eq!(
            m.read_bandwidth().bytes_per_sec(),
            2.0 * m.ssd.read_bandwidth().bytes_per_sec()
        );
        assert!(m.capacity_bytes() > GIB);
    }
}
