//! Run-to-run performance variability.
//!
//! Cao et al. (FAST'17) showed that storage stacks exhibit substantial
//! run-to-run throughput variation even under identical workloads; the
//! paper leans on this to explain Scenario 2's spread (Fig. 6b: the
//! standard deviation grows by >460% from 1 to 8 OSTs).
//!
//! The model has two multiplicative lognormal components, both with unit
//! mean so calibration constants stay interpretable:
//!
//! * a **system** factor, drawn once per run, shared by every device —
//!   transient platform states (cache pressure, background scans,
//!   interfering traffic);
//! * a **per-device** factor, drawn per run *and* per device — device-
//!   local effects (remapped sectors, thermal throttling, firmware GC).
//!
//! Because an N-1 synchronized write completes only when its *slowest*
//! target drains, per-device noise is amplified by the number of targets
//! used — exactly the growth-of-variance-with-stripe-count behaviour the
//! paper reports.

use serde::{Deserialize, Serialize};
use simcore::dist::LogNormal;
use simcore::rng::StreamRng;

/// Sampled speed factors for one run.
#[derive(Debug, Clone, PartialEq)]
pub struct RunFactors {
    /// System-wide factor (applied to every device).
    pub system: f64,
    /// Per-device factors, indexed like the device list passed in.
    pub per_device: Vec<f64>,
}

impl RunFactors {
    /// The combined factor for device `i`.
    pub fn device(&self, i: usize) -> f64 {
        self.system * self.per_device[i]
    }
}

/// Variability configuration (lognormal sigmas of the underlying normals).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct VariabilityModel {
    /// Sigma of the system-wide (common-mode) factor.
    pub system_sigma: f64,
    /// Sigma of the independent per-device factor.
    pub device_sigma: f64,
}

impl VariabilityModel {
    /// A model with the given sigmas.
    ///
    /// # Panics
    /// Panics on negative or non-finite sigmas.
    pub fn new(system_sigma: f64, device_sigma: f64) -> Self {
        assert!(
            system_sigma.is_finite() && system_sigma >= 0.0,
            "invalid system sigma {system_sigma}"
        );
        assert!(
            device_sigma.is_finite() && device_sigma >= 0.0,
            "invalid device sigma {device_sigma}"
        );
        VariabilityModel {
            system_sigma,
            device_sigma,
        }
    }

    /// No variability at all (used by deterministic cross-validation
    /// tests against the analytic capacity model).
    pub fn none() -> Self {
        VariabilityModel::new(0.0, 0.0)
    }

    /// Sample the factors for one run over `n_devices` devices.
    pub fn sample(&self, n_devices: usize, rng: &mut StreamRng) -> RunFactors {
        let system = LogNormal::unit_mean(self.system_sigma).sample(rng);
        let dev_dist = LogNormal::unit_mean(self.device_sigma);
        let per_device = (0..n_devices).map(|_| dev_dist.sample(rng)).collect();
        RunFactors { system, per_device }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use simcore::rng::RngFactory;

    #[test]
    fn none_is_deterministic_unity() {
        let mut rng = RngFactory::new(1).stream("noise", 0);
        let f = VariabilityModel::none().sample(8, &mut rng);
        assert_eq!(f.system, 1.0);
        assert!(f.per_device.iter().all(|&x| x == 1.0));
        assert_eq!(f.device(3), 1.0);
    }

    #[test]
    fn factors_are_positive() {
        let mut rng = RngFactory::new(2).stream("noise", 0);
        let m = VariabilityModel::new(0.2, 0.3);
        for i in 0..100 {
            let f = m.sample(4, &mut rng);
            assert!(f.system > 0.0, "run {i}");
            assert!(f.per_device.iter().all(|&x| x > 0.0));
        }
    }

    #[test]
    fn sample_mean_close_to_one() {
        let mut rng = RngFactory::new(3).stream("noise", 0);
        let m = VariabilityModel::new(0.1, 0.1);
        let n = 20_000;
        let mut sum = 0.0;
        for _ in 0..n {
            sum += m.sample(1, &mut rng).device(0);
        }
        let mean = sum / n as f64;
        assert!((mean - 1.0).abs() < 0.01, "mean {mean}");
    }

    #[test]
    fn same_seed_same_factors() {
        let m = VariabilityModel::new(0.2, 0.2);
        let a = m.sample(4, &mut RngFactory::new(9).stream("n", 5));
        let b = m.sample(4, &mut RngFactory::new(9).stream("n", 5));
        assert_eq!(a, b);
    }

    #[test]
    fn device_combines_system_and_local() {
        let mut rng = RngFactory::new(4).stream("noise", 0);
        let m = VariabilityModel::new(0.5, 0.5);
        let f = m.sample(3, &mut rng);
        for i in 0..3 {
            assert_eq!(f.device(i), f.system * f.per_device[i]);
        }
    }

    #[test]
    #[should_panic(expected = "invalid system sigma")]
    fn negative_sigma_rejected() {
        let _ = VariabilityModel::new(-0.1, 0.0);
    }
}
