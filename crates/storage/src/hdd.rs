//! Mechanical hard-disk model.

use serde::{Deserialize, Serialize};
use simcore::units::{Bandwidth, TIB};

/// A rotating hard disk, parameterized by its data-sheet characteristics.
///
/// The model exposes the two quantities the fluid simulator needs —
/// sustained sequential bandwidth and per-operation positioning latency —
/// derived from RPM/seek specs, so alternative drive generations can be
/// described by their data sheets alone.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct HddModel {
    /// Marketing name, for reports.
    pub name: String,
    /// Spindle speed in revolutions per minute.
    pub rpm: u32,
    /// Average seek time in milliseconds.
    pub avg_seek_ms: f64,
    /// Sustained sequential transfer rate (outer tracks), MiB/s.
    pub sequential_mib_s: f64,
    /// Formatted capacity in bytes.
    pub capacity_bytes: u64,
}

impl HddModel {
    /// The Toshiba AL15SEB18E0Y: 1.8 TB, 10 500 RPM, 2.5" enterprise SAS —
    /// the drive backing every PlaFRIM OST (12 per target, RAID-6).
    /// Data-sheet sustained transfer ~198–260 MiB/s; we use the mid value.
    pub fn toshiba_al15seb18e0y() -> Self {
        HddModel {
            name: "Toshiba AL15SEB18E0Y".to_string(),
            rpm: 10_500,
            avg_seek_ms: 3.8,
            sequential_mib_s: 225.0,
            capacity_bytes: (18 * TIB) / 10, // 1.8 TB
        }
    }

    /// A generic 7 200 RPM near-line SATA drive (used by the
    /// Catalyst-like preset for the Chowdhury contrast experiment).
    pub fn nearline_7200() -> Self {
        HddModel {
            name: "generic 7.2k near-line".to_string(),
            rpm: 7_200,
            avg_seek_ms: 8.5,
            sequential_mib_s: 180.0,
            capacity_bytes: 8 * TIB,
        }
    }

    /// Average rotational latency: half a revolution.
    pub fn rotational_latency_ms(&self) -> f64 {
        assert!(self.rpm > 0, "HDD with zero RPM");
        0.5 * 60_000.0 / f64::from(self.rpm)
    }

    /// Average random-access positioning time (seek + rotation), ms.
    pub fn positioning_ms(&self) -> f64 {
        self.avg_seek_ms + self.rotational_latency_ms()
    }

    /// Sustained sequential bandwidth.
    pub fn sequential_bandwidth(&self) -> Bandwidth {
        Bandwidth::from_mib_per_sec(self.sequential_mib_s)
    }

    /// Random IOPS at the given request size in bytes: positioning plus
    /// transfer time per operation.
    pub fn random_iops(&self, request_bytes: u64) -> f64 {
        let transfer_s = self.sequential_bandwidth().transfer_secs(request_bytes);
        let op_s = self.positioning_ms() / 1000.0 + transfer_s;
        1.0 / op_s
    }

    /// Effective bandwidth of a random workload at the given request size.
    pub fn random_bandwidth(&self, request_bytes: u64) -> Bandwidth {
        Bandwidth::from_bytes_per_sec(self.random_iops(request_bytes) * request_bytes as f64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use simcore::units::MIB;

    #[test]
    fn toshiba_preset_matches_datasheet() {
        let d = HddModel::toshiba_al15seb18e0y();
        assert_eq!(d.rpm, 10_500);
        // 10.5k RPM -> one rev every 5.71ms -> ~2.86ms rotational latency.
        assert!((d.rotational_latency_ms() - 2.857).abs() < 0.01);
        assert!((d.capacity_bytes as f64 / 1e12 - 1.979).abs() < 0.01); // 1.8 TiB-ish in TB
    }

    #[test]
    fn positioning_includes_seek_and_rotation() {
        let d = HddModel::toshiba_al15seb18e0y();
        assert!((d.positioning_ms() - (3.8 + 2.857)).abs() < 0.01);
    }

    #[test]
    fn random_iops_small_requests_dominated_by_positioning() {
        let d = HddModel::toshiba_al15seb18e0y();
        // 4 KiB requests: transfer time negligible, IOPS ~ 1/positioning.
        let iops = d.random_iops(4096);
        let expected = 1000.0 / d.positioning_ms();
        assert!((iops - expected).abs() / expected < 0.02, "iops {iops}");
    }

    #[test]
    fn random_bandwidth_approaches_sequential_for_large_requests() {
        let d = HddModel::toshiba_al15seb18e0y();
        // 64 MiB requests amortize the seek almost entirely.
        let bw = d.random_bandwidth(64 * MIB);
        assert!(bw.mib_per_sec() > 0.9 * d.sequential_mib_s);
        assert!(bw.mib_per_sec() < d.sequential_mib_s);
    }

    #[test]
    fn random_bandwidth_monotone_in_request_size() {
        let d = HddModel::nearline_7200();
        let sizes = [4096u64, 65536, MIB, 16 * MIB];
        let bws: Vec<f64> = sizes
            .iter()
            .map(|&s| d.random_bandwidth(s).bytes_per_sec())
            .collect();
        assert!(bws.windows(2).all(|w| w[0] < w[1]));
    }

    #[test]
    fn slower_spindle_higher_latency() {
        let fast = HddModel::toshiba_al15seb18e0y();
        let slow = HddModel::nearline_7200();
        assert!(slow.rotational_latency_ms() > fast.rotational_latency_ms());
    }
}
