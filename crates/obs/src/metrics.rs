//! Zero-cost-when-disabled runtime metrics: counters, gauges, and
//! log-bucketed mergeable streaming histograms.
//!
//! The event [`Recorder`](crate::Recorder) answers "what happened, when" —
//! a full trace, expensive to keep. This module answers the cheaper
//! question "how much, how often, how distributed": a [`MetricsRegistry`]
//! of named [`Counter`]s, gauges, and [`Histogram`]s that the solver,
//! scheduler, runner and campaign engine populate when (and only when)
//! a caller asks for them. Nothing in the hot path pays for the registry
//! unless it was installed; instrumented structs keep owned primitive
//! cells (a `u64`, a [`Counter`]) and harvest them into a registry at the
//! end of a run.
//!
//! # Determinism
//!
//! Every type here is built so that snapshots are *byte-stable*:
//!
//! * Histograms store **only integer counts** (no running float sum):
//!   recording the same multiset of samples in any order, or merging any
//!   partition of them recorded into separate histograms, yields the
//!   exact same state. Derived float statistics (estimated sum, mean,
//!   quantiles) are pure functions of that state, computed in a fixed
//!   iteration order.
//! * Registries keep entries sorted by metric name, so snapshot order
//!   does not depend on insertion order.
//! * Gauges merge by `max` (commutative and associative), so combining
//!   per-worker registries is independent of thread scheduling.
//! * JSON and Prometheus exports format floats with Rust's shortest
//!   round-trip `Display`, the same convention as the Chrome trace
//!   renderer.
//!
//! # Histogram bucketing
//!
//! Buckets are logarithmic with 16 subdivisions per power of two:
//! a finite sample `v > 0` with binary exponent `e` (i.e. `2^e <= v <
//! 2^(e+1)`) and top-4 mantissa bits `m` lands in bucket
//! `(e + 40) * 16 + m`, covering `[2^e * (1 + m/16), 2^e * (1 + (m+1)/16))`.
//! The
//! covered exponent range is `e ∈ [-40, 88)` — roughly `9e-13` to
//! `3e26`, wide enough for nanoseconds-as-seconds through bytes-per-
//! campaign. Values below the range count as `underflow`, values at or
//! above it (and `+inf`) as `overflow`; zeros, negatives and NaNs are
//! tallied separately and excluded from quantiles. Each bucket is
//! reported at its midpoint, so any quantile estimate is within a
//! relative error of **1/32 ≈ 3.2%** of some exact sample value at that
//! rank (half the bucket's relative width).

use std::fmt::Write as _;

/// Subdivisions per binary order of magnitude.
const SUB: usize = 16;
/// Smallest covered binary exponent (inclusive).
const E_MIN: i64 = -40;
/// Largest covered binary exponent (exclusive).
const E_MAX: i64 = 88;
/// Total addressable buckets: `(E_MAX - E_MIN) * SUB`.
const MAX_BUCKETS: usize = ((E_MAX - E_MIN) as usize) * SUB;
/// Representative value reported for `underflow` samples (`(0, 2^-40)`).
const UNDERFLOW_REP: f64 = 4.547473508864641e-13; // 2^-41
/// Representative value reported for `overflow` samples (`>= 2^88`).
const OVERFLOW_REP: f64 = 3.094_850_098_213_451e26; // 2^88

/// Maximum relative quantile error of [`Histogram::quantile`]: half a
/// bucket's relative width, `1/32`.
pub const HISTOGRAM_RELATIVE_ERROR: f64 = 1.0 / 32.0;

/// A monotonically increasing integer counter.
///
/// Also usable standalone as an owned cell on a hot struct (that is how
/// `FluidSim` counts processed events) and harvested into a registry
/// later.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Counter(u64);

impl Counter {
    /// A counter at zero.
    pub const fn new() -> Self {
        Counter(0)
    }

    /// Increment by one.
    #[inline]
    pub fn inc(&mut self) {
        self.0 += 1;
    }

    /// Increment by `n`.
    #[inline]
    pub fn add(&mut self, n: u64) {
        self.0 += n;
    }

    /// Current value.
    #[inline]
    pub fn get(&self) -> u64 {
        self.0
    }

    /// Reset to zero (used when recycling sim state across runs).
    #[inline]
    pub fn reset(&mut self) {
        self.0 = 0;
    }
}

/// A log-bucketed streaming histogram with exact, order-independent
/// merge.
///
/// `observe` is O(1); no samples are stored. See the module docs for the
/// bucketing scheme and the determinism contract.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Histogram {
    /// Per-bucket counts, dense from bucket 0, grown lazily.
    buckets: Vec<u64>,
    /// Samples equal to `0.0` (either sign).
    zeros: u64,
    /// Samples `< 0` (excluded from quantiles; data-quality tally).
    negatives: u64,
    /// NaN samples (excluded from quantiles; data-quality tally).
    nans: u64,
    /// Positive samples below `2^-40` (includes subnormals).
    underflow: u64,
    /// Samples at or above `2^88` (includes `+inf`).
    overflow: u64,
}

impl Histogram {
    /// An empty histogram.
    pub const fn new() -> Self {
        Histogram {
            buckets: Vec::new(),
            zeros: 0,
            negatives: 0,
            nans: 0,
            underflow: 0,
            overflow: 0,
        }
    }

    /// Record one sample. O(1); never allocates beyond the lazily grown
    /// bucket vector (bounded at 2048 entries).
    #[inline]
    pub fn observe(&mut self, v: f64) {
        if v.is_nan() {
            self.nans += 1;
            return;
        }
        if v == 0.0 {
            self.zeros += 1;
            return;
        }
        if v < 0.0 {
            self.negatives += 1;
            return;
        }
        let bits = v.to_bits();
        let e = ((bits >> 52) & 0x7ff) as i64 - 1023;
        // Subnormals have raw exponent 0 => e = -1023 => underflow.
        if e < E_MIN {
            self.underflow += 1;
            return;
        }
        // +inf has raw exponent 0x7ff => e = 1024 => overflow.
        if e >= E_MAX {
            self.overflow += 1;
            return;
        }
        let sub = ((bits >> 48) & 0xF) as usize;
        let idx = ((e - E_MIN) as usize) * SUB + sub;
        debug_assert!(idx < MAX_BUCKETS);
        if idx >= self.buckets.len() {
            self.buckets.resize(idx + 1, 0);
        }
        self.buckets[idx] += 1;
    }

    /// Record `n` identical samples (used when harvesting integer
    /// tallies like per-target chunk counts).
    pub fn observe_n(&mut self, v: f64, n: u64) {
        if n == 0 {
            return;
        }
        self.observe(v);
        // `observe` bumped exactly one cell; find it again cheaply by
        // re-deriving the classification is wasteful — instead repeat.
        if n > 1 {
            let (cell, idx) = self.last_cell_of(v);
            match cell {
                CellRef::Bucket => self.buckets[idx] += n - 1,
                CellRef::Zeros => self.zeros += n - 1,
                CellRef::Negatives => self.negatives += n - 1,
                CellRef::Nans => self.nans += n - 1,
                CellRef::Underflow => self.underflow += n - 1,
                CellRef::Overflow => self.overflow += n - 1,
            }
        }
    }

    /// Which cell a value classifies into (paired with `observe_n`).
    fn last_cell_of(&self, v: f64) -> (CellRef, usize) {
        if v.is_nan() {
            return (CellRef::Nans, 0);
        }
        if v == 0.0 {
            return (CellRef::Zeros, 0);
        }
        if v < 0.0 {
            return (CellRef::Negatives, 0);
        }
        let bits = v.to_bits();
        let e = ((bits >> 52) & 0x7ff) as i64 - 1023;
        if e < E_MIN {
            return (CellRef::Underflow, 0);
        }
        if e >= E_MAX {
            return (CellRef::Overflow, 0);
        }
        let sub = ((bits >> 48) & 0xF) as usize;
        (CellRef::Bucket, ((e - E_MIN) as usize) * SUB + sub)
    }

    /// Exact merge: elementwise addition of all counts. Commutative and
    /// associative, so merging any partition of a sample stream in any
    /// order reproduces the histogram of the full stream exactly.
    pub fn merge(&mut self, other: &Histogram) {
        if other.buckets.len() > self.buckets.len() {
            self.buckets.resize(other.buckets.len(), 0);
        }
        for (a, b) in self.buckets.iter_mut().zip(other.buckets.iter()) {
            *a += *b;
        }
        self.zeros += other.zeros;
        self.negatives += other.negatives;
        self.nans += other.nans;
        self.underflow += other.underflow;
        self.overflow += other.overflow;
    }

    /// Number of samples that participate in quantiles: zeros,
    /// underflow, bucketed, and overflow (negatives and NaNs excluded).
    pub fn count(&self) -> u64 {
        self.zeros + self.underflow + self.buckets.iter().sum::<u64>() + self.overflow
    }

    /// Total recorded samples including negatives and NaNs.
    pub fn recorded(&self) -> u64 {
        self.count() + self.negatives + self.nans
    }

    /// NaN samples seen.
    pub fn nans(&self) -> u64 {
        self.nans
    }

    /// Zero samples seen.
    pub fn zeros(&self) -> u64 {
        self.zeros
    }

    /// Negative samples seen.
    pub fn negatives(&self) -> u64 {
        self.negatives
    }

    /// Lower bound of bucket `idx`.
    fn bucket_lo(idx: usize) -> f64 {
        let e = (idx / SUB) as i64 + E_MIN;
        let sub = (idx % SUB) as f64;
        exp2i(e) * (1.0 + sub / SUB as f64)
    }

    /// Exclusive upper bound of bucket `idx`.
    fn bucket_hi(idx: usize) -> f64 {
        let e = (idx / SUB) as i64 + E_MIN;
        let sub = (idx % SUB) as f64;
        exp2i(e) * (1.0 + (sub + 1.0) / SUB as f64)
    }

    /// Midpoint representative of bucket `idx`.
    fn bucket_mid(idx: usize) -> f64 {
        let e = (idx / SUB) as i64 + E_MIN;
        let sub = (idx % SUB) as f64;
        exp2i(e) * (1.0 + (sub + 0.5) / SUB as f64)
    }

    /// Quantile estimate at `p ∈ [0, 1]` over the counted population
    /// (see [`Histogram::count`]). Bucketed samples are reported at
    /// their bucket midpoint (relative error ≤
    /// [`HISTOGRAM_RELATIVE_ERROR`]); underflow and overflow samples at
    /// fixed representatives (`2^-41`, `2^88`). Returns NaN on an empty
    /// population.
    ///
    /// # Panics
    /// Panics if `p` is outside `[0, 1]`.
    pub fn quantile(&self, p: f64) -> f64 {
        assert!((0.0..=1.0).contains(&p), "quantile p={p} outside [0,1]");
        let total = self.count();
        if total == 0 {
            return f64::NAN;
        }
        let target = ((p * total as f64).ceil() as u64).clamp(1, total);
        let mut seen = self.zeros;
        if seen >= target {
            return 0.0;
        }
        seen += self.underflow;
        if seen >= target {
            return UNDERFLOW_REP;
        }
        for (idx, &c) in self.buckets.iter().enumerate() {
            seen += c;
            if seen >= target {
                return Self::bucket_mid(idx);
            }
        }
        OVERFLOW_REP
    }

    /// Estimated sum of the counted population, from bucket midpoints.
    /// A pure function of the counts (fixed ascending iteration order),
    /// so identical histograms always report the identical float.
    pub fn estimated_sum(&self) -> f64 {
        let mut s = self.underflow as f64 * UNDERFLOW_REP;
        for (idx, &c) in self.buckets.iter().enumerate() {
            if c > 0 {
                s += c as f64 * Self::bucket_mid(idx);
            }
        }
        s + self.overflow as f64 * OVERFLOW_REP
    }

    /// Estimated mean of the counted population (NaN when empty).
    pub fn estimated_mean(&self) -> f64 {
        let n = self.count();
        if n == 0 {
            f64::NAN
        } else {
            self.estimated_sum() / n as f64
        }
    }

    /// Non-empty buckets as `(bucket_index, count)` pairs in ascending
    /// index order (the canonical snapshot form).
    pub fn nonzero_buckets(&self) -> impl Iterator<Item = (usize, u64)> + '_ {
        self.buckets
            .iter()
            .enumerate()
            .filter(|(_, &c)| c > 0)
            .map(|(i, &c)| (i, c))
    }

    /// Exclusive upper bound of bucket `idx` (public for exports).
    pub fn bucket_upper_bound(idx: usize) -> f64 {
        Self::bucket_hi(idx)
    }

    /// Inclusive lower bound of bucket `idx` (public for exports).
    pub fn bucket_lower_bound(idx: usize) -> f64 {
        Self::bucket_lo(idx)
    }

    /// Midpoint representative of bucket `idx` (public for exports).
    pub fn bucket_midpoint(idx: usize) -> f64 {
        Self::bucket_mid(idx)
    }
}

/// `2^e` for integer `e`, exact for the exponent range used here.
fn exp2i(e: i64) -> f64 {
    debug_assert!((-1022..=1023).contains(&e));
    f64::from_bits(((e + 1023) as u64) << 52)
}

enum CellRef {
    Bucket,
    Zeros,
    Negatives,
    Nans,
    Underflow,
    Overflow,
}

/// One named metric in a registry.
#[derive(Debug, Clone, PartialEq)]
enum Metric {
    Counter(u64),
    Gauge(f64),
    Histogram(Histogram),
}

impl Metric {
    fn kind(&self) -> &'static str {
        match self {
            Metric::Counter(_) => "counter",
            Metric::Gauge(_) => "gauge",
            Metric::Histogram(_) => "histogram",
        }
    }
}

/// A registry of named counters, gauges and histograms.
///
/// Entries are kept sorted by name, so snapshots do not depend on the
/// order metrics were first touched. Names are dotted paths
/// (`"simcore.solves"`, `"ior.retry_probes"`); the Prometheus export
/// maps dots to underscores.
///
/// Using one name with two different metric types is a programming
/// error and panics.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct MetricsRegistry {
    /// Sorted by name.
    entries: Vec<(String, Metric)>,
}

impl MetricsRegistry {
    /// An empty registry.
    pub const fn new() -> Self {
        MetricsRegistry {
            entries: Vec::new(),
        }
    }

    /// True when no metric has been touched.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Number of registered metrics.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    fn slot(&mut self, name: &str, default: Metric) -> &mut Metric {
        match self.entries.binary_search_by(|(n, _)| n.as_str().cmp(name)) {
            Ok(i) => {
                let m = &mut self.entries[i].1;
                assert!(
                    std::mem::discriminant(m) == std::mem::discriminant(&default),
                    "metric {name:?} is a {}, used as a {}",
                    m.kind(),
                    default.kind(),
                );
                m
            }
            Err(i) => {
                self.entries.insert(i, (name.to_string(), default));
                &mut self.entries[i].1
            }
        }
    }

    /// Increment counter `name` by one (creating it at zero first).
    pub fn inc(&mut self, name: &str) {
        self.add(name, 1);
    }

    /// Increment counter `name` by `n` (creating it at zero first).
    pub fn add(&mut self, name: &str, n: u64) {
        match self.slot(name, Metric::Counter(0)) {
            Metric::Counter(c) => *c += n,
            _ => unreachable!(),
        }
    }

    /// Set gauge `name` to `v`. Within one registry the last write wins;
    /// across registries [`MetricsRegistry::merge`] keeps the max.
    pub fn set_gauge(&mut self, name: &str, v: f64) {
        match self.slot(name, Metric::Gauge(v)) {
            Metric::Gauge(g) => *g = v,
            _ => unreachable!(),
        }
    }

    /// Raise gauge `name` to `v` if `v` is larger (high-watermark
    /// semantics, matching the merge rule).
    pub fn gauge_max(&mut self, name: &str, v: f64) {
        match self.slot(name, Metric::Gauge(v)) {
            Metric::Gauge(g) => {
                if v.total_cmp(g).is_gt() {
                    *g = v;
                }
            }
            _ => unreachable!(),
        }
    }

    /// Record `v` into histogram `name` (creating it empty first).
    pub fn observe(&mut self, name: &str, v: f64) {
        match self.slot(name, Metric::Histogram(Histogram::new())) {
            Metric::Histogram(h) => h.observe(v),
            _ => unreachable!(),
        }
    }

    /// Record `n` identical samples into histogram `name`.
    pub fn observe_n(&mut self, name: &str, v: f64, n: u64) {
        match self.slot(name, Metric::Histogram(Histogram::new())) {
            Metric::Histogram(h) => h.observe_n(v, n),
            _ => unreachable!(),
        }
    }

    /// Merge a whole histogram into histogram `name`.
    pub fn merge_histogram(&mut self, name: &str, other: &Histogram) {
        match self.slot(name, Metric::Histogram(Histogram::new())) {
            Metric::Histogram(h) => h.merge(other),
            _ => unreachable!(),
        }
    }

    /// Value of counter `name` (0 when absent).
    pub fn counter(&self, name: &str) -> u64 {
        match self.get(name) {
            Some(Metric::Counter(c)) => *c,
            _ => 0,
        }
    }

    /// Value of gauge `name`, if set.
    pub fn gauge(&self, name: &str) -> Option<f64> {
        match self.get(name) {
            Some(Metric::Gauge(g)) => Some(*g),
            _ => None,
        }
    }

    /// Histogram `name`, if present.
    pub fn histogram(&self, name: &str) -> Option<&Histogram> {
        match self.get(name) {
            Some(Metric::Histogram(h)) => Some(h),
            _ => None,
        }
    }

    /// All metric names in snapshot (sorted) order.
    pub fn names(&self) -> impl Iterator<Item = &str> {
        self.entries.iter().map(|(n, _)| n.as_str())
    }

    fn get(&self, name: &str) -> Option<&Metric> {
        self.entries
            .binary_search_by(|(n, _)| n.as_str().cmp(name))
            .ok()
            .map(|i| &self.entries[i].1)
    }

    /// Merge another registry into this one: counters add, gauges keep
    /// the max, histograms merge exactly. Commutative and associative,
    /// so per-worker registries combine into the same snapshot no matter
    /// how work was scheduled.
    ///
    /// # Panics
    /// Panics if the same name holds different metric types.
    pub fn merge(&mut self, other: &MetricsRegistry) {
        for (name, m) in &other.entries {
            match m {
                Metric::Counter(c) => self.add(name, *c),
                Metric::Gauge(g) => self.gauge_max(name, *g),
                Metric::Histogram(h) => self.merge_histogram(name, h),
            }
        }
    }

    /// Byte-stable JSON snapshot: metrics in name order, histogram
    /// buckets as `[index, count]` pairs in ascending index order,
    /// floats in shortest round-trip form. Identical registries always
    /// serialize to identical bytes.
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\"version\":1,\"metrics\":[");
        for (i, (name, m)) in self.entries.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(
                out,
                "{{\"name\":{},\"type\":\"{}\"",
                json_str(name),
                m.kind()
            );
            match m {
                Metric::Counter(c) => {
                    let _ = write!(out, ",\"value\":{c}");
                }
                Metric::Gauge(g) => {
                    let _ = write!(out, ",\"value\":{}", fmt_f64(*g));
                }
                Metric::Histogram(h) => {
                    let _ = write!(
                        out,
                        ",\"count\":{},\"zeros\":{},\"negatives\":{},\"nans\":{},\
                         \"underflow\":{},\"overflow\":{},\"buckets\":[",
                        h.count(),
                        h.zeros,
                        h.negatives,
                        h.nans,
                        h.underflow,
                        h.overflow
                    );
                    for (j, (idx, c)) in h.nonzero_buckets().enumerate() {
                        if j > 0 {
                            out.push(',');
                        }
                        let _ = write!(out, "[{idx},{c}]");
                    }
                    out.push(']');
                }
            }
            out.push('}');
        }
        out.push_str("]}\n");
        out
    }

    /// Prometheus text exposition (format 0.0.4). Deterministic:
    /// metrics in name order, dots mapped to underscores, histogram
    /// buckets cumulative with shortest round-trip `le` bounds, `_sum`
    /// estimated from bucket midpoints (a pure function of the counts).
    pub fn to_prometheus(&self) -> String {
        let mut out = String::new();
        for (name, m) in &self.entries {
            let pname = prom_name(name);
            match m {
                Metric::Counter(c) => {
                    let _ = writeln!(out, "# TYPE {pname} counter");
                    let _ = writeln!(out, "{pname} {c}");
                }
                Metric::Gauge(g) => {
                    let _ = writeln!(out, "# TYPE {pname} gauge");
                    let _ = writeln!(out, "{pname} {}", fmt_f64(*g));
                }
                Metric::Histogram(h) => {
                    let _ = writeln!(out, "# TYPE {pname} histogram");
                    let mut cum = h.zeros + h.underflow;
                    for (idx, c) in h.nonzero_buckets() {
                        cum += c;
                        let _ = writeln!(
                            out,
                            "{pname}_bucket{{le=\"{}\"}} {cum}",
                            fmt_f64(Histogram::bucket_hi(idx))
                        );
                    }
                    cum += h.overflow;
                    let _ = writeln!(out, "{pname}_bucket{{le=\"+Inf\"}} {cum}");
                    let _ = writeln!(out, "{pname}_sum {}", fmt_f64(h.estimated_sum()));
                    let _ = writeln!(out, "{pname}_count {}", h.count());
                }
            }
        }
        out
    }
}

/// Format a float the way every deterministic export in this workspace
/// does: shortest round-trip `Display`, non-finite mapped to 0.
fn fmt_f64(v: f64) -> String {
    if v.is_finite() {
        format!("{v}")
    } else {
        "0".to_string()
    }
}

/// Minimal JSON string escaping (metric names are ASCII identifiers,
/// but stay correct for anything).
fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// Sanitize a dotted metric name into a Prometheus identifier.
fn prom_name(name: &str) -> String {
    name.chars()
        .map(|c| {
            if c.is_ascii_alphanumeric() || c == '_' {
                c
            } else {
                '_'
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_basics() {
        let mut c = Counter::new();
        c.inc();
        c.add(41);
        assert_eq!(c.get(), 42);
        c.reset();
        assert_eq!(c.get(), 0);
    }

    #[test]
    fn bucket_bounds_bracket_samples() {
        let mut h = Histogram::new();
        for v in [1.0, 1.5, 2.0, 3.75, 1e-6, 1e12, 0.5] {
            h.observe(v);
        }
        for (idx, _) in h.nonzero_buckets() {
            let lo = Histogram::bucket_lower_bound(idx);
            let hi = Histogram::bucket_upper_bound(idx);
            assert!(lo < hi);
            let mid = Histogram::bucket_midpoint(idx);
            assert!(lo < mid && mid < hi);
            // Half the relative width is the documented error bound.
            assert!((hi - lo) / 2.0 / lo <= HISTOGRAM_RELATIVE_ERROR + 1e-15);
        }
        assert_eq!(h.count(), 7);
    }

    #[test]
    fn exact_powers_of_two_land_on_bucket_lower_bound() {
        let mut h = Histogram::new();
        h.observe(2.0);
        let (idx, c) = h.nonzero_buckets().next().unwrap();
        assert_eq!(c, 1);
        assert_eq!(Histogram::bucket_lower_bound(idx), 2.0);
    }

    #[test]
    fn special_values_tallied_separately() {
        let mut h = Histogram::new();
        h.observe(f64::NAN);
        h.observe(0.0);
        h.observe(-0.0);
        h.observe(-5.0);
        h.observe(1e-300); // below 2^-40
        h.observe(f64::MIN_POSITIVE / 2.0); // subnormal
        h.observe(1e300); // above 2^88
        h.observe(f64::INFINITY);
        assert_eq!(h.nans(), 1);
        assert_eq!(h.zeros(), 2);
        assert_eq!(h.negatives(), 1);
        assert_eq!(h.underflow, 2);
        assert_eq!(h.overflow, 2);
        assert_eq!(h.count(), 6); // zeros + under + over
        assert_eq!(h.recorded(), 8);
        assert_eq!(h.nonzero_buckets().count(), 0);
    }

    #[test]
    fn quantile_error_bound_holds() {
        // A deterministic pseudo-random stream spanning many octaves.
        let mut h = Histogram::new();
        let mut samples = Vec::new();
        let mut x = 0x9e3779b97f4a7c15u64;
        for _ in 0..10_000 {
            x = x
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            let u = (x >> 11) as f64 / (1u64 << 53) as f64; // [0,1)
            let v = (u * 30.0 - 10.0).exp2(); // 2^-10 .. 2^20
            samples.push(v);
            h.observe(v);
        }
        samples.sort_by(f64::total_cmp);
        for &p in &[0.01, 0.1, 0.25, 0.5, 0.75, 0.9, 0.99, 1.0] {
            let est = h.quantile(p);
            let rank = ((p * samples.len() as f64).ceil() as usize).clamp(1, samples.len());
            let exact = samples[rank - 1];
            let rel = (est - exact).abs() / exact;
            assert!(
                rel <= HISTOGRAM_RELATIVE_ERROR,
                "p={p}: est {est} vs exact {exact}, rel err {rel}"
            );
        }
    }

    #[test]
    fn quantile_edge_cases() {
        let h = Histogram::new();
        assert!(h.quantile(0.5).is_nan());
        assert!(h.estimated_mean().is_nan());

        let mut z = Histogram::new();
        z.observe(0.0);
        assert_eq!(z.quantile(0.5), 0.0);
        assert_eq!(z.estimated_sum(), 0.0);
        assert_eq!(z.estimated_mean(), 0.0);

        // Only NaNs: quantile population stays empty.
        let mut n = Histogram::new();
        n.observe(f64::NAN);
        assert!(n.quantile(0.5).is_nan());
        assert_eq!(n.recorded(), 1);
    }

    #[test]
    #[should_panic(expected = "outside [0,1]")]
    fn quantile_rejects_bad_p() {
        let mut h = Histogram::new();
        h.observe(1.0);
        let _ = h.quantile(1.5);
    }

    #[test]
    fn merge_is_exact() {
        let samples: Vec<f64> = (1..200).map(|i| i as f64 * 0.37).collect();
        let mut whole = Histogram::new();
        for &v in &samples {
            whole.observe(v);
        }
        let mut a = Histogram::new();
        let mut b = Histogram::new();
        for (i, &v) in samples.iter().enumerate() {
            if i % 3 == 0 {
                a.observe(v)
            } else {
                b.observe(v)
            }
        }
        // Merge in the "wrong" order too: b into a equals whole.
        b.merge(&a);
        assert_eq!(b, whole);
    }

    #[test]
    fn observe_n_equals_repeated_observe() {
        for v in [0.0, -1.0, f64::NAN, 1e-300, 1e300, 3.5] {
            let mut a = Histogram::new();
            let mut b = Histogram::new();
            a.observe_n(v, 5);
            for _ in 0..5 {
                b.observe(v);
            }
            assert_eq!(a, b, "v={v}");
            let mut c = Histogram::new();
            c.observe_n(v, 0);
            assert_eq!(c, Histogram::new());
        }
    }

    #[test]
    fn registry_sorted_snapshot_is_insertion_order_independent() {
        let mut a = MetricsRegistry::new();
        a.inc("b.two");
        a.observe("c.h", 1.5);
        a.set_gauge("a.one", 3.0);
        let mut b = MetricsRegistry::new();
        b.set_gauge("a.one", 3.0);
        b.inc("b.two");
        b.observe("c.h", 1.5);
        assert_eq!(a.to_json(), b.to_json());
        assert_eq!(a.names().collect::<Vec<_>>(), vec!["a.one", "b.two", "c.h"]);
    }

    #[test]
    fn registry_merge_semantics() {
        let mut a = MetricsRegistry::new();
        a.add("n", 2);
        a.set_gauge("g", 5.0);
        a.observe("h", 1.0);
        let mut b = MetricsRegistry::new();
        b.add("n", 3);
        b.set_gauge("g", 4.0);
        b.observe("h", 2.0);
        b.observe("h", 1.0);
        a.merge(&b);
        assert_eq!(a.counter("n"), 5);
        assert_eq!(a.gauge("g"), Some(5.0)); // max
        assert_eq!(a.histogram("h").unwrap().count(), 3);
        // Merge the other way round gives the same snapshot.
        let mut a2 = MetricsRegistry::new();
        a2.add("n", 2);
        a2.set_gauge("g", 5.0);
        a2.observe("h", 1.0);
        let mut b2 = b.clone();
        b2.merge(&a2);
        assert_eq!(b2.to_json(), a.to_json());
    }

    #[test]
    #[should_panic(expected = "is a counter, used as a gauge")]
    fn type_confusion_panics() {
        let mut r = MetricsRegistry::new();
        r.inc("x");
        r.set_gauge("x", 1.0);
    }

    #[test]
    fn json_shape() {
        let mut r = MetricsRegistry::new();
        r.add("sim.events", 7);
        r.set_gauge("sched.suspects", 2.0);
        r.observe("lat", 1.0);
        r.observe("lat", f64::NAN);
        let j = r.to_json();
        assert!(j.starts_with("{\"version\":1,\"metrics\":["));
        assert!(j.contains("{\"name\":\"lat\",\"type\":\"histogram\",\"count\":1,\"zeros\":0,\"negatives\":0,\"nans\":1,\"underflow\":0,\"overflow\":0,\"buckets\":[["));
        assert!(j.contains("{\"name\":\"sched.suspects\",\"type\":\"gauge\",\"value\":2}"));
        assert!(j.contains("{\"name\":\"sim.events\",\"type\":\"counter\",\"value\":7}"));
        assert!(j.ends_with("]}\n"));
    }

    #[test]
    fn prometheus_shape() {
        let mut r = MetricsRegistry::new();
        r.add("sim.events", 7);
        r.observe("lat.s", 1.0);
        r.observe("lat.s", 1.0);
        r.observe("lat.s", 2.0);
        let p = r.to_prometheus();
        assert!(p.contains("# TYPE lat_s histogram\n"));
        assert!(p.contains("lat_s_bucket{le=\"1.0625\"} 2\n"));
        assert!(p.contains("lat_s_bucket{le=\"+Inf\"} 3\n"));
        assert!(p.contains("lat_s_count 3\n"));
        assert!(p.contains("# TYPE sim_events counter\nsim_events 7\n"));
        // Cumulative counts are nondecreasing.
        let mut last = 0u64;
        for line in p.lines().filter(|l| l.contains("_bucket{")) {
            let v: u64 = line.rsplit(' ').next().unwrap().parse().unwrap();
            assert!(v >= last);
            last = v;
        }
    }

    #[test]
    fn gauge_merge_handles_nan_deterministically() {
        let mut a = MetricsRegistry::new();
        a.set_gauge("g", f64::NAN);
        let mut b = MetricsRegistry::new();
        b.set_gauge("g", 1.0);
        let mut ab = a.clone();
        ab.merge(&b);
        let mut ba = b.clone();
        ba.merge(&a);
        // total_cmp orders NaN above all numbers; both directions agree.
        assert_eq!(ab.to_json(), ba.to_json());
    }
}
