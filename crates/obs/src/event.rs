//! The structured event vocabulary emitted by instrumented components.
//!
//! Every variant that describes a point in time carries `at: Nanos` —
//! sim-time nanoseconds since the start of the run. Metadata variants
//! (`ResourceMeta`, `FlowMeta`) carry no timestamp: they describe
//! identity, not occurrence, and are emitted when the entity is
//! registered.

use serde::{Deserialize, Serialize};

/// Sim-time timestamp: nanoseconds since the start of the run.
///
/// Matches `simcore::time::SimTime::as_nanos()`; kept as a plain `u64`
/// here so `obs` stays a leaf crate with no simulator dependency.
pub type Nanos = u64;

/// One structured simulation event.
///
/// The stream a run produces is deterministic: same seed, same events,
/// same order, same timestamps.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Event {
    /// Identity of a flow-network resource (emitted once per resource
    /// when a recorder attaches to the simulation).
    ResourceMeta {
        /// Resource index in the flow network.
        resource: u32,
        /// Human-readable label, e.g. `"server0.link"` or `"target3"`.
        label: String,
    },
    /// Identity of a flow (emitted when the flow is created).
    FlowMeta {
        /// Flow index in the flow network.
        flow: u32,
        /// Index of the application the flow belongs to.
        app: u32,
        /// Process rank within the application.
        process: u32,
        /// Storage target the flow writes to.
        target: u32,
    },
    /// A flow became active.
    FlowStart {
        /// Sim-time timestamp.
        at: Nanos,
        /// Flow index.
        flow: u32,
        /// Emitter-chosen tag (the runner uses it to match start/end).
        tag: u64,
        /// Bytes the flow still has to transfer when it starts.
        bytes: f64,
    },
    /// A flow completed.
    FlowEnd {
        /// Sim-time timestamp.
        at: Nanos,
        /// Flow index.
        flow: u32,
        /// Tag matching the corresponding [`Event::FlowStart`].
        tag: u64,
    },
    /// A resource's aggregate throughput changed after a rate recompute.
    ///
    /// Only *changes* are recorded, so the series for one resource is a
    /// piecewise-constant step function: the rate holds `bps` from `at`
    /// until the resource's next `RateChange`.
    RateChange {
        /// Sim-time timestamp.
        at: Nanos,
        /// Resource index.
        resource: u32,
        /// New aggregate throughput through the resource, bytes/second.
        bps: f64,
    },
    /// A resource's capacity speed factor changed (fault injection or
    /// explicit degradation).
    FactorChange {
        /// Sim-time timestamp.
        at: Nanos,
        /// Resource index.
        resource: u32,
        /// New speed factor (1.0 = nominal, 0.0 = offline).
        factor: f64,
    },
    /// A storage target went offline (physical fault timeline).
    TargetOffline {
        /// Sim-time timestamp.
        at: Nanos,
        /// Target id.
        target: u32,
    },
    /// A storage target became degraded.
    TargetDegraded {
        /// Sim-time timestamp.
        at: Nanos,
        /// Target id.
        target: u32,
        /// Remaining speed factor in `(0, 1)`.
        factor: f64,
    },
    /// A storage target recovered to full speed.
    TargetOnline {
        /// Sim-time timestamp.
        at: Nanos,
        /// Target id.
        target: u32,
    },
    /// A server's network link was degraded.
    LinkDegraded {
        /// Sim-time timestamp.
        at: Nanos,
        /// Server index.
        server: u32,
        /// Remaining speed factor in `(0, 1)`.
        factor: f64,
    },
    /// A server's network link was restored to full speed.
    LinkRestored {
        /// Sim-time timestamp.
        at: Nanos,
        /// Server index.
        server: u32,
    },
    /// A client observed (via heartbeat) that a target is unreachable
    /// and stalled its I/O to that target.
    StallObserved {
        /// Sim-time timestamp (fault time + heartbeat detection delay).
        at: Nanos,
        /// Target id the client is stalled on.
        target: u32,
    },
    /// A client probed a stalled target and found it still down.
    RetryProbe {
        /// Sim-time timestamp of the probe.
        at: Nanos,
        /// Target id being probed.
        target: u32,
        /// 1-based attempt number.
        attempt: u32,
    },
    /// A client probe found the target back online; I/O resumes.
    RetryResumed {
        /// Sim-time timestamp of the successful probe.
        at: Nanos,
        /// Target id.
        target: u32,
        /// Total failed probes before this successful one.
        attempts: u32,
    },
    /// The client gave up on a stalled target (deadline exceeded).
    RetryAbandoned {
        /// Sim-time timestamp the deadline expired.
        at: Nanos,
        /// Target id.
        target: u32,
    },
    /// An application request arrived at the scheduler.
    SchedArrival {
        /// Sim-time timestamp.
        at: Nanos,
        /// Index of the application in arrival order.
        app: u32,
    },
    /// The scheduler queued an arrival instead of starting it at once.
    SchedQueued {
        /// Sim-time timestamp.
        at: Nanos,
        /// Application index.
        app: u32,
    },
    /// The scheduler admitted an application (it leaves the queue).
    SchedAdmitted {
        /// Sim-time timestamp.
        at: Nanos,
        /// Application index.
        app: u32,
    },
    /// The scheduler placed an application on a set of targets.
    SchedPlaced {
        /// Sim-time timestamp.
        at: Nanos,
        /// Application index.
        app: u32,
        /// Allocation policy that made the decision.
        policy: String,
        /// The chosen target ids.
        targets: Vec<u32>,
    },
    /// An application completed and released its targets.
    SchedReleased {
        /// Sim-time timestamp.
        at: Nanos,
        /// Application index.
        app: u32,
    },
    /// The adaptive policy restriped a running application mid-flight:
    /// issued chunks drain on the old stripe set, the remainder is
    /// redirected onto the new one.
    SchedRestriped {
        /// Sim-time timestamp of the restripe decision.
        at: Nanos,
        /// Application index.
        app: u32,
        /// Decision kind: `"widen"`, `"narrow"`, or `"replace"`.
        kind: String,
        /// Old stripe set (flat target ids).
        from: Vec<u32>,
        /// New stripe set (flat target ids).
        to: Vec<u32>,
    },
    /// The client-side straggler detector flagged a target: its mean
    /// chunk completion rate fell below the configured fraction of the
    /// fleet's reference quantile.
    HedgeFlagged {
        /// Sim-time timestamp of the chunk completion that tripped it.
        at: Nanos,
        /// The flagged target.
        target: u32,
        /// The target's mean observed chunk rate, bytes/second.
        mean_bps: f64,
    },
    /// A hedged write stream redirected its remaining chunks away from
    /// a flagged straggler.
    HedgeRedirect {
        /// Sim-time timestamp of the redirect decision.
        at: Nanos,
        /// Application index of the redirected stream.
        app: u32,
        /// Process rank of the redirected stream.
        process: u32,
        /// The straggler the stream abandons.
        from: u32,
        /// The healthy target the remaining chunks go to.
        to: u32,
    },
    /// A named phase of the run, e.g. `"io"` or `"app0.io"`.
    Span {
        /// Span name.
        name: String,
        /// Sim-time start.
        start: Nanos,
        /// Sim-time end (inclusive of the phase, `end >= start`).
        end: Nanos,
    },
}

/// Discriminant-only view of [`Event`], for counting and filtering.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum EventKind {
    /// [`Event::ResourceMeta`]
    ResourceMeta,
    /// [`Event::FlowMeta`]
    FlowMeta,
    /// [`Event::FlowStart`]
    FlowStart,
    /// [`Event::FlowEnd`]
    FlowEnd,
    /// [`Event::RateChange`]
    RateChange,
    /// [`Event::FactorChange`]
    FactorChange,
    /// [`Event::TargetOffline`]
    TargetOffline,
    /// [`Event::TargetDegraded`]
    TargetDegraded,
    /// [`Event::TargetOnline`]
    TargetOnline,
    /// [`Event::LinkDegraded`]
    LinkDegraded,
    /// [`Event::LinkRestored`]
    LinkRestored,
    /// [`Event::StallObserved`]
    StallObserved,
    /// [`Event::RetryProbe`]
    RetryProbe,
    /// [`Event::RetryResumed`]
    RetryResumed,
    /// [`Event::RetryAbandoned`]
    RetryAbandoned,
    /// [`Event::SchedArrival`]
    SchedArrival,
    /// [`Event::SchedQueued`]
    SchedQueued,
    /// [`Event::SchedAdmitted`]
    SchedAdmitted,
    /// [`Event::SchedPlaced`]
    SchedPlaced,
    /// [`Event::SchedReleased`]
    SchedReleased,
    /// [`Event::SchedRestriped`]
    SchedRestriped,
    /// [`Event::HedgeFlagged`]
    HedgeFlagged,
    /// [`Event::HedgeRedirect`]
    HedgeRedirect,
    /// [`Event::Span`]
    Span,
}

impl Event {
    /// The discriminant of this event.
    pub fn kind(&self) -> EventKind {
        match self {
            Event::ResourceMeta { .. } => EventKind::ResourceMeta,
            Event::FlowMeta { .. } => EventKind::FlowMeta,
            Event::FlowStart { .. } => EventKind::FlowStart,
            Event::FlowEnd { .. } => EventKind::FlowEnd,
            Event::RateChange { .. } => EventKind::RateChange,
            Event::FactorChange { .. } => EventKind::FactorChange,
            Event::TargetOffline { .. } => EventKind::TargetOffline,
            Event::TargetDegraded { .. } => EventKind::TargetDegraded,
            Event::TargetOnline { .. } => EventKind::TargetOnline,
            Event::LinkDegraded { .. } => EventKind::LinkDegraded,
            Event::LinkRestored { .. } => EventKind::LinkRestored,
            Event::StallObserved { .. } => EventKind::StallObserved,
            Event::RetryProbe { .. } => EventKind::RetryProbe,
            Event::RetryResumed { .. } => EventKind::RetryResumed,
            Event::RetryAbandoned { .. } => EventKind::RetryAbandoned,
            Event::SchedArrival { .. } => EventKind::SchedArrival,
            Event::SchedQueued { .. } => EventKind::SchedQueued,
            Event::SchedAdmitted { .. } => EventKind::SchedAdmitted,
            Event::SchedPlaced { .. } => EventKind::SchedPlaced,
            Event::SchedReleased { .. } => EventKind::SchedReleased,
            Event::SchedRestriped { .. } => EventKind::SchedRestriped,
            Event::HedgeFlagged { .. } => EventKind::HedgeFlagged,
            Event::HedgeRedirect { .. } => EventKind::HedgeRedirect,
            Event::Span { .. } => EventKind::Span,
        }
    }

    /// The sim-time timestamp of this event, if it has one.
    ///
    /// Metadata events return `None`; spans return their start time.
    pub fn at(&self) -> Option<Nanos> {
        match self {
            Event::ResourceMeta { .. } | Event::FlowMeta { .. } => None,
            Event::FlowStart { at, .. }
            | Event::FlowEnd { at, .. }
            | Event::RateChange { at, .. }
            | Event::FactorChange { at, .. }
            | Event::TargetOffline { at, .. }
            | Event::TargetDegraded { at, .. }
            | Event::TargetOnline { at, .. }
            | Event::LinkDegraded { at, .. }
            | Event::LinkRestored { at, .. }
            | Event::StallObserved { at, .. }
            | Event::RetryProbe { at, .. }
            | Event::RetryResumed { at, .. }
            | Event::RetryAbandoned { at, .. }
            | Event::SchedArrival { at, .. }
            | Event::SchedQueued { at, .. }
            | Event::SchedAdmitted { at, .. }
            | Event::SchedPlaced { at, .. }
            | Event::SchedReleased { at, .. }
            | Event::SchedRestriped { at, .. }
            | Event::HedgeFlagged { at, .. }
            | Event::HedgeRedirect { at, .. } => Some(*at),
            Event::Span { start, .. } => Some(*start),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kind_matches_variant() {
        let e = Event::RateChange {
            at: 5,
            resource: 2,
            bps: 1.5,
        };
        assert_eq!(e.kind(), EventKind::RateChange);
        assert_eq!(e.at(), Some(5));
        let m = Event::ResourceMeta {
            resource: 0,
            label: "x".into(),
        };
        assert_eq!(m.kind(), EventKind::ResourceMeta);
        assert_eq!(m.at(), None);
        let s = Event::SchedPlaced {
            at: 9,
            app: 1,
            policy: "Random".into(),
            targets: vec![0, 4],
        };
        assert_eq!(s.kind(), EventKind::SchedPlaced);
        assert_eq!(s.at(), Some(9));
    }

    #[test]
    fn events_round_trip_through_serde() {
        let events = vec![
            Event::ResourceMeta {
                resource: 1,
                label: "server0.link".into(),
            },
            Event::FlowStart {
                at: 10,
                flow: 3,
                tag: 7,
                bytes: 1024.0,
            },
            Event::Span {
                name: "io".into(),
                start: 0,
                end: 99,
            },
            Event::SchedArrival { at: 4, app: 2 },
            Event::SchedPlaced {
                at: 5,
                app: 2,
                policy: "LeastLoadedServer".into(),
                targets: vec![1, 2, 3],
            },
            Event::SchedReleased { at: 50, app: 2 },
        ];
        let json = serde_json::to_string(&events).expect("serialize");
        let back: Vec<Event> = serde_json::from_str(&json).expect("deserialize");
        assert_eq!(back, events);
    }
}
