//! The in-memory event sink: stores the full event stream and answers
//! time-series and straggler queries over it.

use crate::chrome;
use crate::event::{Event, EventKind, Nanos};
use crate::Recorder;

const NANOS_PER_SEC: f64 = 1e9;

/// An in-memory [`Recorder`] that keeps every event for later querying.
///
/// All queries are derived views over the stored stream — the timeline
/// never mutates or reorders what was recorded, so exporting it
/// ([`Timeline::to_chrome_trace`]) is deterministic.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Timeline {
    events: Vec<Event>,
}

impl Recorder for Timeline {
    fn record(&mut self, event: Event) {
        self.events.push(event);
    }
}

impl Timeline {
    /// Create an empty timeline.
    pub fn new() -> Self {
        Self::default()
    }

    /// The recorded events, in emission order.
    pub fn events(&self) -> &[Event] {
        &self.events
    }

    /// Number of recorded events.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// Whether no events were recorded.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Count events of one kind.
    pub fn count(&self, kind: EventKind) -> usize {
        self.events.iter().filter(|e| e.kind() == kind).count()
    }

    /// The label registered for a resource, if any.
    pub fn label(&self, resource: u32) -> Option<&str> {
        self.events.iter().find_map(|e| match e {
            Event::ResourceMeta { resource: r, label } if *r == resource => Some(label.as_str()),
            _ => None,
        })
    }

    /// The resource index registered under a label, if any.
    pub fn resource(&self, label: &str) -> Option<u32> {
        self.events.iter().find_map(|e| match e {
            Event::ResourceMeta { resource, label: l } if l == label => Some(*resource),
            _ => None,
        })
    }

    /// The latest sim-time timestamp in the stream (span ends included).
    ///
    /// Returns 0 for an empty (or metadata-only) timeline.
    pub fn end(&self) -> Nanos {
        self.events
            .iter()
            .map(|e| match e {
                Event::Span { end, .. } => *end,
                other => other.at().unwrap_or(0),
            })
            .max()
            .unwrap_or(0)
    }

    /// The sim-time at which the last flow completed.
    ///
    /// This is the upper bound of the I/O phase: rate series are defined
    /// (and integrated by [`Timeline::bytes_through`]) on `[0, io_end]`.
    /// Returns 0 if no flow completed.
    pub fn io_end(&self) -> Nanos {
        self.events
            .iter()
            .filter_map(|e| match e {
                Event::FlowEnd { at, .. } => Some(*at),
                _ => None,
            })
            .max()
            .unwrap_or(0)
    }

    /// The piecewise-constant rate series of one resource:
    /// `(timestamp, bytes/sec)` steps, each rate holding until the next
    /// entry.
    pub fn rate_series(&self, resource: u32) -> Vec<(Nanos, f64)> {
        self.events
            .iter()
            .filter_map(|e| match e {
                Event::RateChange {
                    at,
                    resource: r,
                    bps,
                } if *r == resource => Some((*at, *bps)),
                _ => None,
            })
            .collect()
    }

    /// Merged rate series over several resources: one row per instant at
    /// which *any* of the listed resources changed rate, carrying the
    /// then-current rate of every listed resource (same-instant changes
    /// are merged into one row).
    pub fn series(&self, resources: &[u32]) -> Vec<(Nanos, Vec<f64>)> {
        let mut rows: Vec<(Nanos, Vec<f64>)> = Vec::new();
        let mut current = vec![0.0; resources.len()];
        for e in &self.events {
            if let Event::RateChange { at, resource, bps } = e {
                if let Some(pos) = resources.iter().position(|r| r == resource) {
                    current[pos] = *bps;
                    match rows.last_mut() {
                        Some((t, row)) if *t == *at => row[pos] = *bps,
                        _ => rows.push((*at, current.clone())),
                    }
                }
            }
        }
        rows
    }

    /// Total bytes through a resource: the integral of its rate series
    /// over `[0, io_end]`.
    ///
    /// Matches the flow network's own byte accounting to floating-point
    /// association error.
    pub fn bytes_through(&self, resource: u32) -> f64 {
        self.integrate(resource, |_rate| 1.0)
    }

    /// Seconds during `[0, io_end]` in which the resource moved bytes
    /// (rate > 0).
    ///
    /// Note this is *throughput-busy* time; the flow network also counts
    /// a resource busy while an active flow is stalled at zero rate
    /// (e.g. during an outage), so this can be smaller than the
    /// network's `busy_secs`.
    pub fn busy_secs(&self, resource: u32) -> f64 {
        let mut busy = 0.0;
        let mut last: Option<(Nanos, f64)> = None;
        let end = self.io_end();
        for (at, bps) in self.rate_series(resource) {
            if let Some((t0, rate)) = last {
                if rate > 0.0 {
                    busy += (at.min(end).saturating_sub(t0)) as f64 / NANOS_PER_SEC;
                }
            }
            last = Some((at, bps));
        }
        if let Some((t0, rate)) = last {
            if rate > 0.0 && end > t0 {
                busy += (end - t0) as f64 / NANOS_PER_SEC;
            }
        }
        busy
    }

    /// Bytes through a resource during the window `[t0, t1]`: the
    /// integral of its piecewise-constant rate series over the window,
    /// clipped (like [`Timeline::bytes_through`]) to `[0, io_end]` where
    /// the series is defined. `bytes_between(r, 0, io_end())` equals
    /// `bytes_through(r)` to floating-point association error, and
    /// adjacent windows tile: `bytes_between(r, a, b) +
    /// bytes_between(r, b, c) == bytes_between(r, a, c)`.
    ///
    /// Returns 0 for an empty or inverted window.
    pub fn bytes_between(&self, resource: u32, t0: Nanos, t1: Nanos) -> f64 {
        let end = self.io_end().min(t1);
        if end <= t0 {
            return 0.0;
        }
        let mut total = 0.0;
        let mut last: Option<(Nanos, f64)> = None;
        for (at, bps) in self.rate_series(resource) {
            if let Some((seg_start, rate)) = last {
                let lo = seg_start.max(t0);
                let hi = at.min(end);
                if hi > lo {
                    total += rate * (hi - lo) as f64 / NANOS_PER_SEC;
                }
            }
            last = Some((at, bps));
            if at >= end {
                break;
            }
        }
        if let Some((seg_start, rate)) = last {
            let lo = seg_start.max(t0);
            if end > lo {
                total += rate * (end - lo) as f64 / NANOS_PER_SEC;
            }
        }
        total
    }

    fn integrate(&self, resource: u32, weight: impl Fn(f64) -> f64) -> f64 {
        let mut total = 0.0;
        let mut last: Option<(Nanos, f64)> = None;
        let end = self.io_end();
        for (at, bps) in self.rate_series(resource) {
            if let Some((t0, rate)) = last {
                let dt = (at.min(end).saturating_sub(t0)) as f64 / NANOS_PER_SEC;
                total += rate * weight(rate) * dt;
            }
            last = Some((at, bps));
        }
        if let Some((t0, rate)) = last {
            if end > t0 {
                let dt = (end - t0) as f64 / NANOS_PER_SEC;
                total += rate * weight(rate) * dt;
            }
        }
        total
    }

    /// Per-target chunk completion times: every `FlowEnd` of a flow
    /// whose [`Event::FlowMeta`] names `target`, in completion order.
    /// This is exactly the signal the client-side straggler detector
    /// consumes (`ior`'s hedged runs sample chunk rates per target);
    /// the last entry is the instant the target's rate series
    /// ([`Timeline::rate_series`]) drops to idle.
    pub fn target_completions(&self, target: u32) -> Vec<Nanos> {
        let flows: Vec<u32> = self
            .events
            .iter()
            .filter_map(|e| match e {
                Event::FlowMeta {
                    flow, target: t, ..
                } if *t == target => Some(*flow),
                _ => None,
            })
            .collect();
        self.events
            .iter()
            .filter_map(|e| match e {
                Event::FlowEnd { at, flow, .. } if flows.contains(flow) => Some(*at),
                _ => None,
            })
            .collect()
    }

    /// Per-process completion times: `((app, process), latest FlowEnd)`
    /// for every process that completed at least one flow, sorted by
    /// `(app, process)`. The spread of these — and the per-target view
    /// of the same ends, [`Timeline::target_completions`] — is the
    /// straggler picture a mean bandwidth hides.
    pub fn completions(&self) -> Vec<((u32, u32), Nanos)> {
        let mut owner: Vec<(u32, (u32, u32))> = Vec::new();
        for e in &self.events {
            if let Event::FlowMeta {
                flow, app, process, ..
            } = e
            {
                owner.push((*flow, (*app, *process)));
            }
        }
        let mut done: Vec<((u32, u32), Nanos)> = Vec::new();
        for e in &self.events {
            if let Event::FlowEnd { at, flow, .. } = e {
                let Some(&(_, key)) = owner.iter().find(|(f, _)| f == flow) else {
                    continue;
                };
                match done.iter_mut().find(|(k, _)| *k == key) {
                    Some((_, t)) => *t = (*t).max(*at),
                    None => done.push((key, *at)),
                }
            }
        }
        done.sort_by_key(|(k, _)| *k);
        done
    }

    /// All recorded spans as `(name, start, end)`, in emission order.
    pub fn spans(&self) -> Vec<(&str, Nanos, Nanos)> {
        self.events
            .iter()
            .filter_map(|e| match e {
                Event::Span { name, start, end } => Some((name.as_str(), *start, *end)),
                _ => None,
            })
            .collect()
    }

    /// Render the timeline as Chrome trace-event JSON
    /// (open in Perfetto or `chrome://tracing`).
    pub fn to_chrome_trace(&self) -> String {
        chrome::render(&self.events)
    }
}

/// An always-on incremental byte integral over a piecewise-constant rate
/// signal — the O(1)-per-sample version of [`Timeline::bytes_through`].
///
/// A retained [`Timeline`] answers byte queries by re-scanning the full
/// rate series; a live engine admitting millions of flows cannot afford
/// that (or the event storage behind it). `RateIntegral` keeps just three
/// words of state: feed it each rate change as it happens
/// ([`RateIntegral::observe`]) and read the accumulated bytes at any
/// instant at or after the last sample ([`RateIntegral::bytes_until`]).
/// Replaying a timeline's `rate_series` through it reproduces
/// `bytes_through`/`bytes_between` exactly (same sums in the same order).
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct RateIntegral {
    last_at: Nanos,
    last_bps: f64,
    total: f64,
}

impl RateIntegral {
    /// A fresh integral: zero bytes, zero rate, clock at 0.
    pub fn new() -> Self {
        Self::default()
    }

    /// Record a rate change: the previous rate held from the previous
    /// sample until `at`, and `bps` holds from `at` on. Samples must be
    /// fed in non-decreasing time order.
    ///
    /// # Panics
    /// Panics if `at` is before the previous sample.
    pub fn observe(&mut self, at: Nanos, bps: f64) {
        assert!(at >= self.last_at, "rate samples must be time-ordered");
        self.total += self.last_bps * (at - self.last_at) as f64 / NANOS_PER_SEC;
        self.last_at = at;
        self.last_bps = bps;
    }

    /// Accumulated bytes from time 0 through `at`, extending the current
    /// rate from the last sample. Returns the closed total (ignoring the
    /// extension) if `at` is before the last sample.
    pub fn bytes_until(&self, at: Nanos) -> f64 {
        self.total + self.last_bps * at.saturating_sub(self.last_at) as f64 / NANOS_PER_SEC
    }

    /// The rate in effect since the last sample (bytes/sec).
    pub fn rate(&self) -> f64 {
        self.last_bps
    }

    /// The timestamp of the last sample.
    pub fn last_at(&self) -> Nanos {
        self.last_at
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sec(s: f64) -> Nanos {
        (s * NANOS_PER_SEC).round() as Nanos
    }

    fn sample_timeline() -> Timeline {
        let mut t = Timeline::new();
        t.record(Event::ResourceMeta {
            resource: 0,
            label: "server0.link".into(),
        });
        t.record(Event::FlowMeta {
            flow: 0,
            app: 0,
            process: 0,
            target: 2,
        });
        t.record(Event::FlowStart {
            at: 0,
            flow: 0,
            tag: 1,
            bytes: 30.0,
        });
        t.record(Event::RateChange {
            at: 0,
            resource: 0,
            bps: 10.0,
        });
        t.record(Event::RateChange {
            at: sec(2.0),
            resource: 0,
            bps: 5.0,
        });
        t.record(Event::FlowEnd {
            at: sec(4.0),
            flow: 0,
            tag: 1,
        });
        t.record(Event::Span {
            name: "io".into(),
            start: 0,
            end: sec(5.0),
        });
        t
    }

    #[test]
    fn integrates_piecewise_constant_rates_to_io_end() {
        let t = sample_timeline();
        assert_eq!(t.io_end(), sec(4.0));
        assert_eq!(t.end(), sec(5.0));
        // 10 B/s for 2 s, then 5 B/s for 2 s (series extends to io_end).
        assert!((t.bytes_through(0) - 30.0).abs() < 1e-9);
        assert!((t.busy_secs(0) - 4.0).abs() < 1e-9);
    }

    #[test]
    fn lookups_and_counts() {
        let t = sample_timeline();
        assert_eq!(t.label(0), Some("server0.link"));
        assert_eq!(t.resource("server0.link"), Some(0));
        assert_eq!(t.count(EventKind::RateChange), 2);
        assert_eq!(t.count(EventKind::FlowEnd), 1);
        assert_eq!(t.len(), 7);
        assert!(!t.is_empty());
        assert_eq!(t.spans(), vec![("io", 0, sec(5.0))]);
    }

    #[test]
    fn completions_report_latest_flow_end_per_process() {
        let mut t = sample_timeline();
        t.record(Event::FlowMeta {
            flow: 1,
            app: 0,
            process: 0,
            target: 3,
        });
        t.record(Event::FlowStart {
            at: 0,
            flow: 1,
            tag: 2,
            bytes: 1.0,
        });
        t.record(Event::FlowEnd {
            at: sec(6.0),
            flow: 1,
            tag: 2,
        });
        assert_eq!(t.completions(), vec![((0, 0), sec(6.0))]);
    }

    #[test]
    fn target_completions_pin_against_rate_series() {
        // Two chunk flows on target 2 (the sample flow plus a second
        // one), one flow on target 3: the per-target query returns the
        // chunk ends in completion order, and the *last* end on target 2
        // coincides with the instant its resource's rate series goes
        // idle — the two views describe the same drain.
        let mut t = sample_timeline();
        t.record(Event::FlowMeta {
            flow: 1,
            app: 0,
            process: 1,
            target: 2,
        });
        t.record(Event::FlowStart {
            at: 0,
            flow: 1,
            tag: 2,
            bytes: 4.0,
        });
        t.record(Event::FlowEnd {
            at: sec(2.0),
            flow: 1,
            tag: 2,
        });
        t.record(Event::FlowMeta {
            flow: 2,
            app: 0,
            process: 2,
            target: 3,
        });
        t.record(Event::FlowEnd {
            at: sec(3.0),
            flow: 2,
            tag: 3,
        });
        t.record(Event::RateChange {
            at: sec(4.0),
            resource: 0,
            bps: 0.0,
        });
        assert_eq!(t.target_completions(2), vec![sec(4.0), sec(2.0)]);
        assert_eq!(t.target_completions(3), vec![sec(3.0)]);
        assert!(t.target_completions(9).is_empty());
        // Pin: the last chunk end on target 2 is the instant resource 0
        // (the target's bottleneck in this fixture) drops to rate 0.
        let last_end = *t.target_completions(2).iter().max().unwrap();
        let went_idle = t
            .rate_series(0)
            .into_iter()
            .find(|&(_, bps)| bps == 0.0)
            .map(|(at, _)| at)
            .unwrap();
        assert_eq!(last_end, went_idle);
    }

    #[test]
    fn series_merges_same_instant_changes() {
        let mut t = Timeline::new();
        t.record(Event::RateChange {
            at: 0,
            resource: 0,
            bps: 1.0,
        });
        t.record(Event::RateChange {
            at: 0,
            resource: 1,
            bps: 2.0,
        });
        t.record(Event::RateChange {
            at: 10,
            resource: 1,
            bps: 3.0,
        });
        // resource 2 never appears: ignored.
        let rows = t.series(&[0, 1]);
        assert_eq!(rows, vec![(0, vec![1.0, 2.0]), (10, vec![1.0, 3.0])]);
    }

    #[test]
    fn bytes_between_tiles_and_matches_bytes_through() {
        let t = sample_timeline();
        // Full window == bytes_through.
        let full = t.bytes_between(0, 0, t.io_end());
        assert!((full - t.bytes_through(0)).abs() < 1e-9);
        // Sub-windows: 10 B/s on [0,2), 5 B/s on [2,4).
        assert!((t.bytes_between(0, 0, sec(1.0)) - 10.0).abs() < 1e-9);
        assert!((t.bytes_between(0, sec(1.0), sec(3.0)) - 15.0).abs() < 1e-9);
        assert!((t.bytes_between(0, sec(3.0), sec(4.0)) - 5.0).abs() < 1e-9);
        // Adjacent windows tile to the whole.
        let tiled = t.bytes_between(0, 0, sec(1.0))
            + t.bytes_between(0, sec(1.0), sec(3.0))
            + t.bytes_between(0, sec(3.0), sec(4.0));
        assert!((tiled - full).abs() < 1e-9);
        // Clipped at io_end; empty and inverted windows are zero.
        assert!((t.bytes_between(0, sec(3.0), sec(99.0)) - 5.0).abs() < 1e-9);
        assert_eq!(t.bytes_between(0, sec(2.0), sec(2.0)), 0.0);
        assert_eq!(t.bytes_between(0, sec(3.0), sec(1.0)), 0.0);
        // Unknown resource: no series, no bytes.
        assert_eq!(t.bytes_between(9, 0, sec(4.0)), 0.0);
    }

    #[test]
    fn rate_integral_replays_the_series_to_the_same_bytes() {
        let t = sample_timeline();
        let mut acc = RateIntegral::new();
        for (at, bps) in t.rate_series(0) {
            acc.observe(at, bps);
        }
        let end = t.io_end();
        assert!((acc.bytes_until(end) - t.bytes_through(0)).abs() < 1e-9);
        assert_eq!(acc.rate(), 5.0);
        assert_eq!(acc.last_at(), sec(2.0));

        // Windowed reads taken *live* (a mark between samples) agree
        // with bytes_between without re-scanning the series.
        let mut live = RateIntegral::new();
        live.observe(0, 10.0);
        let mark = live.bytes_until(sec(1.0));
        assert!((mark - 10.0).abs() < 1e-9);
        live.observe(sec(2.0), 5.0);
        let window = live.bytes_until(end) - mark;
        assert!((window - t.bytes_between(0, sec(1.0), end)).abs() < 1e-9);
    }

    #[test]
    fn trailing_rate_without_flow_end_integrates_to_zero() {
        let mut t = Timeline::new();
        t.record(Event::RateChange {
            at: 0,
            resource: 0,
            bps: 42.0,
        });
        // No FlowEnd: io_end is 0, so no time passes.
        assert_eq!(t.bytes_through(0), 0.0);
        assert_eq!(t.busy_secs(0), 0.0);
    }
}
