//! Chrome trace-event JSON rendering.
//!
//! Produces the legacy "JSON array format" understood by
//! [Perfetto](https://ui.perfetto.dev) and `chrome://tracing`:
//! one JSON object per line inside a top-level array.
//!
//! The layout groups events into synthetic "processes":
//!
//! | pid | content |
//! |-----|---------|
//! | 0   | run phase spans (`ph:"X"` complete events) |
//! | 1   | per-resource rate counters (`ph:"C"`) |
//! | 2   | per-flow spans (`ph:"X"`, one track per process rank) |
//! | 3   | fault and client retry instants (`ph:"i"`) |
//! | 4   | scheduler lifecycle instants (`ph:"i"`) |
//!
//! Rendering is deterministic: timestamps are sim-time microseconds
//! printed as fixed-point `<µs>.<ns/1000 zero-padded>`, floats use
//! Rust's shortest-roundtrip `Display`, and event order follows the
//! recorded stream.

use crate::event::{Event, Nanos};

const PID_SPANS: u32 = 0;
const PID_RESOURCES: u32 = 1;
const PID_FLOWS: u32 = 2;
const PID_MARKS: u32 = 3;
const PID_SCHED: u32 = 4;

/// Render an event stream as a Chrome trace-event JSON document.
///
/// The same stream always renders to the same bytes.
pub fn render(events: &[Event]) -> String {
    let mut out = String::new();
    out.push_str("[\n");
    let mut first = true;
    let mut push = |line: String, out: &mut String| {
        if !std::mem::take(&mut first) {
            out.push_str(",\n");
        }
        out.push_str(&line);
    };

    for (pid, name) in [
        (PID_SPANS, "run"),
        (PID_RESOURCES, "resources"),
        (PID_FLOWS, "flows"),
        (PID_MARKS, "faults+retries"),
        (PID_SCHED, "scheduler"),
    ] {
        push(
            format!(
                "{{\"ph\":\"M\",\"pid\":{pid},\"name\":\"process_name\",\
                 \"args\":{{\"name\":{}}}}}",
                json_str(name)
            ),
            &mut out,
        );
    }

    // Resource labels become thread names on the counter process so the
    // counter tracks read e.g. "server0.link" instead of "resource 3".
    for e in events {
        if let Event::ResourceMeta { resource, label } = e {
            push(
                format!(
                    "{{\"ph\":\"M\",\"pid\":{PID_RESOURCES},\"tid\":{resource},\
                     \"name\":\"thread_name\",\"args\":{{\"name\":{}}}}}",
                    json_str(label)
                ),
                &mut out,
            );
        }
    }

    // Flow starts are matched to their end by (flow, tag) to produce
    // complete ("X") events; unmatched starts are skipped.
    for (i, e) in events.iter().enumerate() {
        match e {
            Event::ResourceMeta { .. } | Event::FlowMeta { .. } => {}
            Event::FlowStart {
                at,
                flow,
                tag,
                bytes,
            } => {
                let Some(end) = events[i + 1..].iter().find_map(|x| match x {
                    Event::FlowEnd {
                        at,
                        flow: f,
                        tag: t,
                    } if f == flow && t == tag => Some(*at),
                    _ => None,
                }) else {
                    continue;
                };
                let meta = events.iter().find_map(|x| match x {
                    Event::FlowMeta {
                        flow: f,
                        app,
                        process,
                        target,
                    } if f == flow => Some((*app, *process, *target)),
                    _ => None,
                });
                let (name, tid) = match meta {
                    Some((app, process, target)) => (
                        format!("app{app}/p{process}\u{2192}t{target}"),
                        app * 10_000 + process,
                    ),
                    None => (format!("flow{flow}"), *flow),
                };
                push(
                    format!(
                        "{{\"ph\":\"X\",\"pid\":{PID_FLOWS},\"tid\":{tid},\
                         \"name\":{},\"ts\":{},\"dur\":{},\
                         \"args\":{{\"bytes\":{}}}}}",
                        json_str(&name),
                        ts(*at),
                        dur(*at, end),
                        num(*bytes)
                    ),
                    &mut out,
                );
            }
            Event::FlowEnd { .. } => {}
            Event::RateChange { at, resource, bps } => push(
                format!(
                    "{{\"ph\":\"C\",\"pid\":{PID_RESOURCES},\"tid\":{resource},\
                     \"name\":\"rate\",\"ts\":{},\
                     \"args\":{{\"MiB/s\":{}}}}}",
                    ts(*at),
                    num(bps / (1024.0 * 1024.0))
                ),
                &mut out,
            ),
            Event::FactorChange {
                at,
                resource,
                factor,
            } => push(
                format!(
                    "{{\"ph\":\"C\",\"pid\":{PID_RESOURCES},\"tid\":{resource},\
                     \"name\":\"factor\",\"ts\":{},\
                     \"args\":{{\"factor\":{}}}}}",
                    ts(*at),
                    num(*factor)
                ),
                &mut out,
            ),
            Event::TargetOffline { at, target } => {
                push(mark(*at, &format!("t{target} offline")), &mut out)
            }
            Event::TargetDegraded { at, target, factor } => push(
                mark(*at, &format!("t{target} degraded x{}", Disp(*factor))),
                &mut out,
            ),
            Event::TargetOnline { at, target } => {
                push(mark(*at, &format!("t{target} online")), &mut out)
            }
            Event::LinkDegraded { at, server, factor } => push(
                mark(*at, &format!("s{server}.link degraded x{}", Disp(*factor))),
                &mut out,
            ),
            Event::LinkRestored { at, server } => {
                push(mark(*at, &format!("s{server}.link restored")), &mut out)
            }
            Event::StallObserved { at, target } => {
                push(mark(*at, &format!("stall on t{target}")), &mut out)
            }
            Event::RetryProbe {
                at,
                target,
                attempt,
            } => push(mark(*at, &format!("probe t{target} #{attempt}")), &mut out),
            Event::RetryResumed {
                at,
                target,
                attempts,
            } => push(
                mark(*at, &format!("t{target} resumed after {attempts} probes")),
                &mut out,
            ),
            Event::RetryAbandoned { at, target } => {
                push(mark(*at, &format!("abandoned t{target}")), &mut out)
            }
            Event::SchedArrival { at, app } => {
                push(sched_mark(*at, &format!("app{app} arrived")), &mut out)
            }
            Event::SchedQueued { at, app } => {
                push(sched_mark(*at, &format!("app{app} queued")), &mut out)
            }
            Event::SchedAdmitted { at, app } => {
                push(sched_mark(*at, &format!("app{app} admitted")), &mut out)
            }
            Event::SchedPlaced {
                at,
                app,
                policy,
                targets,
            } => {
                let ts: Vec<String> = targets.iter().map(|t| format!("t{t}")).collect();
                push(
                    sched_mark(
                        *at,
                        &format!("app{app} placed on [{}] by {policy}", ts.join(",")),
                    ),
                    &mut out,
                )
            }
            Event::SchedReleased { at, app } => {
                push(sched_mark(*at, &format!("app{app} released")), &mut out)
            }
            Event::SchedRestriped {
                at,
                app,
                kind,
                from,
                to,
            } => {
                let f: Vec<String> = from.iter().map(|t| format!("t{t}")).collect();
                let t: Vec<String> = to.iter().map(|t| format!("t{t}")).collect();
                push(
                    sched_mark(
                        *at,
                        &format!(
                            "app{app} restriped ({kind}) [{}]\u{2192}[{}]",
                            f.join(","),
                            t.join(",")
                        ),
                    ),
                    &mut out,
                )
            }
            Event::HedgeFlagged { at, target, .. } => push(
                mark(*at, &format!("t{target} flagged as straggler")),
                &mut out,
            ),
            Event::HedgeRedirect {
                at,
                app,
                process,
                from,
                to,
            } => push(
                mark(
                    *at,
                    &format!("app{app}/p{process} hedge t{from}\u{2192}t{to}"),
                ),
                &mut out,
            ),
            Event::Span { name, start, end } => push(
                format!(
                    "{{\"ph\":\"X\",\"pid\":{PID_SPANS},\"tid\":0,\
                     \"name\":{},\"ts\":{},\"dur\":{}}}",
                    json_str(name),
                    ts(*start),
                    dur(*start, *end)
                ),
                &mut out,
            ),
        }
    }

    out.push_str("\n]\n");
    out
}

/// One instant ("i") marker on the fault/retry process.
fn mark(at: Nanos, name: &str) -> String {
    instant(PID_MARKS, at, name)
}

/// One instant ("i") marker on the scheduler process.
fn sched_mark(at: Nanos, name: &str) -> String {
    instant(PID_SCHED, at, name)
}

fn instant(pid: u32, at: Nanos, name: &str) -> String {
    format!(
        "{{\"ph\":\"i\",\"pid\":{pid},\"tid\":0,\"s\":\"t\",\
         \"name\":{},\"ts\":{}}}",
        json_str(name),
        ts(at)
    )
}

/// Sim-time nanoseconds as trace microseconds, fixed-point to the
/// nanosecond (`123.456` = 123µs456ns). Integer arithmetic only, so
/// rendering is exact and deterministic.
fn ts(at: Nanos) -> String {
    format!("{}.{:03}", at / 1000, at % 1000)
}

/// Duration between two sim-time stamps in trace microseconds.
fn dur(start: Nanos, end: Nanos) -> String {
    ts(end.saturating_sub(start))
}

/// A finite float as JSON; non-finite values render as 0 (JSON has no
/// NaN/Infinity). Rust's `Display` for `f64` is shortest-roundtrip and
/// never uses exponent notation for these magnitudes.
fn num(v: f64) -> String {
    if v.is_finite() {
        format!("{v}")
    } else {
        "0".to_string()
    }
}

/// Display adapter so event names embed floats the same way `num` does.
struct Disp(f64);

impl std::fmt::Display for Disp {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", num(self.0))
    }
}

/// Minimal JSON string escaping (quotes, backslash, control chars).
fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Accepts any JSON value; deserializing `Vec<Any>` therefore checks
    /// the document is a syntactically valid JSON array and counts its
    /// elements (the vendored serde_json exposes no public `Value`).
    struct Any;

    impl serde::Deserialize for Any {
        fn from_value(_: &serde::Value) -> Result<Self, serde::DeError> {
            Ok(Any)
        }
    }

    fn parse_array(json: &str) -> Vec<Any> {
        serde_json::from_str(json).expect("valid JSON array")
    }

    #[test]
    fn timestamps_are_fixed_point_microseconds() {
        assert_eq!(ts(0), "0.000");
        assert_eq!(ts(1), "0.001");
        assert_eq!(ts(1_500), "1.500");
        assert_eq!(ts(2_000_000_123), "2000000.123");
    }

    #[test]
    fn render_produces_valid_json_with_matched_flows() {
        let events = vec![
            Event::ResourceMeta {
                resource: 0,
                label: "t0".into(),
            },
            Event::FlowMeta {
                flow: 0,
                app: 1,
                process: 2,
                target: 3,
            },
            Event::FlowStart {
                at: 0,
                flow: 0,
                tag: 9,
                bytes: 8.0,
            },
            Event::RateChange {
                at: 0,
                resource: 0,
                bps: 1024.0 * 1024.0,
            },
            Event::FlowEnd {
                at: 8_000,
                flow: 0,
                tag: 9,
            },
            Event::StallObserved { at: 500, target: 3 },
            Event::SchedPlaced {
                at: 100,
                app: 1,
                policy: "UtilizationFeedback".into(),
                targets: vec![3, 5],
            },
            Event::Span {
                name: "io".into(),
                start: 0,
                end: 8_000,
            },
        ];
        let json = render(&events);
        // 5 process_name + 1 thread_name + flow X + counter + 2 instants
        // + span.
        assert_eq!(parse_array(&json).len(), 11);
        assert!(json.contains("app1/p2\u{2192}t3"));
        assert!(json.contains("\"tid\":10002"));
        assert!(json.contains("\"MiB/s\":1"));
        assert!(json.contains("stall on t3"));
        assert!(json.contains("app1 placed on [t3,t5] by UtilizationFeedback"));
        // Unmatched start disappears rather than corrupting the trace.
        let unmatched = vec![Event::FlowStart {
            at: 0,
            flow: 5,
            tag: 1,
            bytes: 1.0,
        }];
        let j2 = render(&unmatched);
        assert!(!j2.contains("flow5"));
    }

    #[test]
    fn escapes_and_non_finite_values_stay_valid_json() {
        let events = vec![
            Event::ResourceMeta {
                resource: 0,
                label: "we\"ird\\la\nbel".into(),
            },
            Event::RateChange {
                at: 0,
                resource: 0,
                bps: f64::NAN,
            },
        ];
        let json = render(&events);
        parse_array(&json);
        assert!(json.contains("\"MiB/s\":0"));
    }
}
