//! # obs — event-level tracing for the simulation stack
//!
//! The simulator's aggregate outputs ([`UtilizationReport`]-style
//! busy-seconds and byte totals) hide *when* things happened: which
//! resource saturated during an outage window, how long a client sat in
//! backoff, which process straggled. This crate adds a thin, deterministic
//! observability layer:
//!
//! * [`Event`] — the structured event vocabulary (flow lifecycle,
//!   per-resource rate changes, fault transitions, client retry attempts,
//!   named phase spans). Timestamps are **sim-time nanoseconds**
//!   ([`Nanos`]), never wall-clock, so a traced run is exactly as
//!   reproducible as an untraced one.
//! * [`Recorder`] — the sink trait emitters call into. Emission sites
//!   branch on an `Option<&mut dyn Recorder>`, so the disabled path costs
//!   one predictable branch.
//! * [`Timeline`] — an in-memory sink queryable from tests and
//!   experiments: per-resource rate series, byte integrals, busy time,
//!   per-process completion times, and spans.
//! * [`chrome::render`] / [`Timeline::to_chrome_trace`] — a Chrome
//!   trace-event JSON exporter; the output opens directly in
//!   [Perfetto](https://ui.perfetto.dev) or `chrome://tracing`.
//! * [`metrics`] — the aggregate side of observability: a
//!   [`MetricsRegistry`](metrics::MetricsRegistry) of named counters,
//!   gauges, and log-bucketed mergeable streaming histograms. Where the
//!   event layer answers "what happened, when", the metrics layer
//!   answers "how much, how often, how distributed" at O(1) per sample
//!   and with exact, order-independent merges across workers.
//!
//! ## Determinism contract
//!
//! Two runs with the same seed produce byte-identical event streams and
//! byte-identical rendered traces. To keep that property, emitters must
//! only record sim-time-derived timestamps, event order must follow
//! simulation order (no hash-map iteration), and the JSON renderer
//! formats floats via Rust's shortest-roundtrip `Display`.
//!
//! [`UtilizationReport`]: https://docs.rs/ior
//! [`Timeline::to_chrome_trace`]: timeline::Timeline::to_chrome_trace

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod chrome;
pub mod event;
pub mod metrics;
pub mod timeline;

pub use event::{Event, EventKind, Nanos};
pub use timeline::{RateIntegral, Timeline};

/// A sink for structured simulation events.
///
/// Implementors receive every event an instrumented component emits, in
/// simulation order. The built-in [`Timeline`] sink stores them for later
/// querying/export; custom sinks can stream, filter, or aggregate.
pub trait Recorder {
    /// Record one event. Called in simulation order with monotone
    /// (per-emitter) sim-time timestamps.
    fn record(&mut self, event: Event);
}
