//! Property tests for the metrics histograms: merging is a faithful,
//! order- and partition-independent fold, and the JSON snapshot is a
//! byte-stable function of the recorded multiset — the invariants the
//! campaign engine's parallel merge and the golden-pinned exports rely
//! on.

use obs::metrics::{Histogram, MetricsRegistry};
use proptest::prelude::*;

/// Sample values spanning the histogram's whole input domain: ordinary
/// positives over many octaves, zeros, negatives, NaNs, subnormal-range
/// underflows, and overflow-range giants.
fn value_strategy() -> impl Strategy<Value = f64> {
    prop_oneof![
        1e-6f64..1e12,
        0.5f64..2e9,
        Just(0.0),
        -1e9f64..-1e-9,
        Just(f64::NAN),
        Just(1e-300),
        Just(1e300),
    ]
}

fn record_all(values: &[f64]) -> Histogram {
    let mut h = Histogram::new();
    for &v in values {
        h.observe(v);
    }
    h
}

fn snapshot(h: &Histogram) -> String {
    let mut reg = MetricsRegistry::new();
    reg.merge_histogram("h", h);
    reg.to_json()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn any_partition_and_order_merges_to_the_pooled_histogram(
        values in proptest::collection::vec(value_strategy(), 0..200),
        cut_a in 0usize..200,
        cut_b in 0usize..200,
    ) {
        let pooled = record_all(&values);
        // Split at two arbitrary points and merge the shards backwards.
        let a = cut_a.min(values.len());
        let b = cut_b.min(values.len()).max(a);
        let mut merged = record_all(&values[b..]);
        merged.merge(&record_all(&values[a..b]));
        merged.merge(&record_all(&values[..a]));
        prop_assert_eq!(&merged, &pooled);
        prop_assert_eq!(snapshot(&merged), snapshot(&pooled));
        // Recording in reverse order is also indistinguishable.
        let reversed: Vec<f64> = values.iter().rev().copied().collect();
        prop_assert_eq!(snapshot(&record_all(&reversed)), snapshot(&pooled));
    }

    #[test]
    fn counts_partition_the_sample_exactly(
        values in proptest::collection::vec(value_strategy(), 0..200),
    ) {
        let h = record_all(&values);
        // Every sample lands in exactly one tally; none are dropped.
        prop_assert_eq!(h.recorded(), values.len() as u64);
        let nans = values.iter().filter(|v| v.is_nan()).count() as u64;
        let negatives = values.iter().filter(|v| **v < 0.0).count() as u64;
        let zeros = values.iter().filter(|v| **v == 0.0).count() as u64;
        prop_assert_eq!(h.nans(), nans);
        prop_assert_eq!(h.negatives(), negatives);
        prop_assert_eq!(h.zeros(), zeros);
        prop_assert_eq!(h.count(), h.recorded() - nans - negatives);
    }

    #[test]
    fn quantiles_are_monotone_and_bracketed(
        values in proptest::collection::vec(0.5f64..1e9, 1..200),
    ) {
        let h = record_all(&values);
        let qs: Vec<f64> = [0.0, 0.25, 0.5, 0.75, 0.95, 1.0]
            .iter()
            .map(|&p| h.quantile(p))
            .collect();
        for w in qs.windows(2) {
            prop_assert!(w[0] <= w[1], "quantiles must be monotone: {qs:?}");
        }
        let lo = values.iter().copied().fold(f64::INFINITY, f64::min);
        let hi = values.iter().copied().fold(0.0, f64::max);
        // Midpoint representatives stay within one bucket of the range.
        prop_assert!(qs[0] >= lo * (1.0 - 2.0 * obs::metrics::HISTOGRAM_RELATIVE_ERROR));
        prop_assert!(qs[5] <= hi * (1.0 + 2.0 * obs::metrics::HISTOGRAM_RELATIVE_ERROR));
    }
}

#[test]
fn empty_histogram_edge_cases() {
    let h = Histogram::new();
    assert_eq!(h.count(), 0);
    assert_eq!(h.recorded(), 0);
    assert!(h.quantile(0.5).is_nan());
    assert!(h.estimated_mean().is_nan());
    assert_eq!(h.estimated_sum(), 0.0);
    // Merging an empty histogram is the identity, both ways.
    let mut a = Histogram::new();
    a.observe(3.5);
    let before = a.clone();
    a.merge(&Histogram::new());
    assert_eq!(a, before);
    let mut e = Histogram::new();
    e.merge(&before);
    assert_eq!(e, before);
}
