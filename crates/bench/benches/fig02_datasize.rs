//! Bench: regenerate Figure 2 (data-size sweep) per scenario.
//!
//! The measured quantity is the wall time of one reduced-fidelity
//! regeneration; the series itself is printed once so a bench run leaves
//! the same evidence as the `repro` binary.

use bench::bench_ctx;
use criterion::{criterion_group, criterion_main, Criterion};
use experiments::{fig02_datasize, Scenario};

fn bench(c: &mut Criterion) {
    let ctx = bench_ctx();
    for scenario in [Scenario::S1Ethernet, Scenario::S2Omnipath] {
        let fig = fig02_datasize::run(&ctx, scenario);
        for p in &fig.points {
            println!(
                "fig02 {scenario:?} {:>5} GiB: mean {:.0} MiB/s",
                p.gib,
                p.summary().mean
            );
        }
        c.bench_function(format!("fig02/{scenario:?}"), |b| {
            b.iter(|| fig02_datasize::run(&ctx, scenario))
        });
    }
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench
}
criterion_main!(benches);
