//! Fleet-scale solver benchmark: the sharded connected-component solver
//! vs. the unsharded full-active solve on a datacenter fleet.
//!
//! Not a Criterion target: it drains staggered flow waves over a
//! 100-server × 10-target [`cluster::FleetSpec`] fleet (non-blocking
//! switch, so each server group is its own connected component) at
//! 2 000, 20 000 and 200 000 total flows, in both solver modes, writes
//! `BENCH_flow_scale.json` at the repository root, and enforces two
//! gates so CI catches scaling regressions:
//!
//! * sharded must be at least 5x the unsharded events/sec at 200 000
//!   flows (the speedup the sharding claims at datacenter scale);
//! * the sharded 200 000-flow events/sec must not drop below 70% of the
//!   committed `BENCH_flow_scale.json` baseline.
//!
//! Flows arrive in waves of 8 per component across all 100 components,
//! with heterogeneous depth weights so every component saturates at its
//! own bottleneck level. Each completion dirties one component: the
//! sharded solver re-solves that ~8-flow component in a handful of
//! progressive-filling rounds, while the unsharded one re-freezes the
//! whole ~800-flow active set across ~100 distinct bottleneck levels —
//! a full resource scan per level. The unsharded mode is timed over a truncated completion prefix
//! at the larger scales (draining 200 000 completions through full
//! active-set solves would dominate the whole bench suite); events/sec
//! over the drained prefix is the common currency.

use cluster::{Fabric, FabricNoise, FleetSpec, SwitchPolicy, TargetId};
use simcore::flow::{FluidSim, SimArena};
use simcore::units::Bandwidth;
use simcore::SimTime;
use std::time::Instant;

const SERVERS: u32 = 100;
const TARGETS_PER_SERVER: u32 = 10;
const NODES: usize = 100;
const SCALES: [u64; 3] = [2_000, 20_000, 200_000];
/// Completion-prefix cap for the unsharded mode (full drain at or below,
/// truncated above).
const UNSHARDED_CAP: u64 = 20_000;

fn fleet() -> cluster::Platform {
    FleetSpec::new("bench-100x10")
        .servers(SERVERS)
        .targets_per_server(TARGETS_PER_SERVER)
        .max_nodes(NODES as u32)
        .server_link(Bandwidth::from_mib_per_sec(2400.0))
        .backend(Bandwidth::from_mib_per_sec(4700.0))
        // Low enough that heavy-weight flows freeze at their own target
        // rather than the shared link: hundreds of distinct bottleneck
        // levels fleet-wide instead of one per server.
        .target_bw(Bandwidth::from_mib_per_sec(300.0))
        .switch_policy(SwitchPolicy::NonBlocking)
        .build()
        .expect("bench fleet is valid")
}

/// Drain up to `cap` completions of an `n_flows` workload; returns
/// events/sec over the drained prefix.
///
/// Flow `i` belongs to component `i % 100` (node `k` only ever writes to
/// server `k`, and the non-blocking switch stays out of every path), so
/// the fleet is 100 disjoint components of ~8 active flows each while
/// waves arrive slower than they drain. Depth weights vary per flow, so
/// no two components share a fair-share level and the unsharded solver
/// cannot collapse the fleet into one freeze round.
fn one_rep(n_flows: u64, cap: u64, sharded: bool, arena: &mut SimArena) -> f64 {
    let platform = fleet();
    let fabric = Fabric::build(&platform, NODES, 8, &FabricNoise::none(&platform));
    let (net, paths) = fabric.into_parts();

    let mut sim = FluidSim::with_arena(net, arena);
    sim.set_sharded(sharded);
    // 8 flows per component per wave, all 100 components in parallel.
    const WAVE: u64 = 800;
    for i in 0..n_flows {
        let comp = (i % 100) as usize;
        let slot = ((i / 100) % u64::from(TARGETS_PER_SERVER)) as u32;
        let target = TargetId(comp as u32 * TARGETS_PER_SERVER + slot);
        let path = paths.write_path(comp, target);
        let start = SimTime::from_secs_f64((i / WAVE) as f64 * 0.25);
        // Pseudo-diverse weights: distinct fair-share levels everywhere,
        // so the global solve freezes roughly one resource per round.
        let weight = 1.0 + ((i * 7919) % 97) as f64 / 16.0;
        sim.start_weighted_flow_at(start, path, 10.0 + (i * 13 % 17) as f64, i, weight);
    }

    let t0 = Instant::now();
    let mut done = 0u64;
    while done < cap && sim.next_completion().is_some() {
        done += 1;
    }
    let elapsed = t0.elapsed().as_secs_f64();
    assert_eq!(done, cap, "drained fewer completions than requested");
    sim.recycle_into(arena);
    done as f64 / elapsed
}

fn median(mut xs: Vec<f64>) -> f64 {
    xs.sort_by(f64::total_cmp);
    xs[xs.len() / 2]
}

/// Pull `"key": <float>` out of the committed baseline without a JSON
/// dependency; returns `None` when the key is absent or malformed.
fn extract_f64(json: &str, key: &str) -> Option<f64> {
    let pat = format!("\"{key}\":");
    let rest = &json[json.find(&pat)? + pat.len()..];
    let end = rest.find([',', '\n', '}']).unwrap_or(rest.len());
    rest[..end].trim().parse().ok()
}

fn main() {
    let mut arena = SimArena::new();
    // Warm caches, allocator, and the arena before timing anything.
    one_rep(SCALES[0], SCALES[0], true, &mut arena);
    one_rep(SCALES[0], SCALES[0], false, &mut arena);

    let mut rows = String::new();
    let mut speedup_200k = 0.0;
    let mut sharded_200k = 0.0;
    for &n in &SCALES {
        let cap = n.min(UNSHARDED_CAP);
        let reps = if n >= 200_000 { 3 } else { 5 };
        // Interleave the modes so environmental drift hits both equally.
        let mut sharded = Vec::with_capacity(reps);
        let mut unsharded = Vec::with_capacity(reps);
        for _ in 0..reps {
            sharded.push(one_rep(n, n, true, &mut arena));
            unsharded.push(one_rep(n, cap, false, &mut arena));
        }
        let s_eps = median(sharded);
        let u_eps = median(unsharded);
        let speedup = s_eps / u_eps;
        println!(
            "{n:>7} flows: sharded {s_eps:>10.0} ev/s, unsharded {u_eps:>10.0} ev/s \
             ({speedup:.1}x, unsharded prefix {cap})"
        );
        rows.push_str(&format!(
            "  \"sharded_{n}_events_per_sec\": {s_eps:.0},\n  \
             \"unsharded_{n}_events_per_sec\": {u_eps:.0},\n  \
             \"speedup_{n}\": {speedup:.2},\n"
        ));
        if n == 200_000 {
            speedup_200k = speedup;
            sharded_200k = s_eps;
        }
    }

    let out = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_flow_scale.json");
    let baseline = std::fs::read_to_string(out)
        .ok()
        .and_then(|s| extract_f64(&s, "sharded_200000_events_per_sec"));

    let json = format!(
        "{{\n  \"servers\": {SERVERS},\n  \"targets_per_server\": {TARGETS_PER_SERVER},\n\
         {rows}  \"unsharded_prefix_cap\": {UNSHARDED_CAP}\n}}\n"
    );
    std::fs::write(out, &json).expect("write bench json");
    println!("wrote {out}");

    if speedup_200k < 5.0 {
        eprintln!(
            "FAIL: sharded solver speedup {speedup_200k:.2}x at 200k flows is below the \
             required 5x"
        );
        std::process::exit(1);
    }
    if let Some(base) = baseline {
        if sharded_200k < 0.7 * base {
            eprintln!(
                "FAIL: sharded events/sec regressed: {sharded_200k:.0} < 70% of committed \
                 baseline {base:.0}"
            );
            std::process::exit(1);
        }
        println!("baseline check passed ({sharded_200k:.0} vs committed {base:.0} ev/s)");
    } else {
        println!("no committed baseline found; wrote a fresh one");
    }
}
