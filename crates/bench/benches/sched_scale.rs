//! Online-engine scaling benchmark: Poisson streams served by the
//! continuous online admission engine, against the frozen-oracle
//! reference at the scale where the oracle stops being usable.
//!
//! Not a Criterion target: it times fixed workloads in both admission
//! modes, writes `BENCH_sched_scale.json` at the repository root, and
//! enforces three gates so CI catches scaling regressions. Two regimes,
//! because the engines differ in *what* their per-admission cost scales
//! with:
//!
//! * **Stationary sweep** (1-node 256 MiB applications at 2/s, a couple
//!   of applications in flight): arrivals ∈ {10^3..10^6} under the
//!   online engine. Admission cost is amortized O(1), so work per
//!   admission must stay near-flat. The primary near-linearity gate is
//!   *deterministic*: simulation events per admission at 10^6 must stay
//!   within 2x of the 10^4 rung — the workload is bit-reproducible, so
//!   this ratio is exactly 1.0x until an event-storm regression lands,
//!   and it cannot flake. Timing gates back it up as loose collapse
//!   detectors: throughput is measured in process CPU time (wall time
//!   swings 2-3x with neighbour load on shared hosts; CPU time still
//!   drifts with memory-subsystem contention, just less), the 10^4 rung
//!   is re-measured right after the 10^6 rung, and the floors sit far
//!   below any honest measurement — a superlinear solver regression
//!   lands orders of magnitude under them.
//! * **Contended burst** (1-node 2 GiB applications at 3/s, offered
//!   load past capacity so the node-limit gate keeps the maximum
//!   allowed population in flight): 10^4 arrivals in both modes. This
//!   is the regime that caps frozen-oracle traces at ~10^4 arrivals:
//!   the oracle re-simulates every running application per admission —
//!   O(in-flight) full re-simulations plus two fresh fabric builds,
//!   against the online engine's single live injection. The gate
//!   requires the online engine to admit at least 10x faster.
//!
//! Slowdowns in the burst regime are wait-dominated and the two modes
//! price retroactive interference differently; the gate compares
//! admission *throughput* only. Mode agreement is pinned separately, on
//! small traces, by `tests/online_oracle.rs`.

use experiments::campaign::SchedPolicyKind;
use experiments::context::{deploy, Scenario};
use sched::{AdmissionMode, ArrivalStream, Scheduler};
use simcore::rng::RngFactory;
use simcore::units::MIB;
use std::time::Instant;

/// Process CPU seconds (user + system) via `getrusage`, falling back to
/// wall time off Linux. The workload is deterministic and
/// single-threaded, so CPU time per admission is a stable quantity on
/// shared CI hosts where wall-clock throughput swings by 2-3x with
/// neighbour load — gating on it measures the engine, not the host.
fn cpu_seconds(wall_anchor: Instant) -> f64 {
    #[cfg(target_os = "linux")]
    {
        #[repr(C)]
        struct Timeval {
            sec: i64,
            usec: i64,
        }
        #[repr(C)]
        struct Rusage {
            utime: Timeval,
            stime: Timeval,
            // ru_maxrss .. ru_nivcsw: 14 more longs on Linux.
            rest: [i64; 14],
        }
        extern "C" {
            fn getrusage(who: i32, usage: *mut Rusage) -> i32;
        }
        let mut r = Rusage {
            utime: Timeval { sec: 0, usec: 0 },
            stime: Timeval { sec: 0, usec: 0 },
            rest: [0; 14],
        };
        // SAFETY: RUSAGE_SELF (0) with a properly sized, writable struct.
        if unsafe { getrusage(0, &mut r) } == 0 {
            return (r.utime.sec + r.stime.sec) as f64
                + (r.utime.usec + r.stime.usec) as f64 * 1e-6;
        }
    }
    wall_anchor.elapsed().as_secs_f64()
}

/// Stationary sweep: light applications, a couple in flight at a time.
const RATE_PER_S: f64 = 2.0;
const APP_MIB: u64 = 256;
const ONLINE_SWEEP: [usize; 4] = [1_000, 10_000, 100_000, 1_000_000];

/// Contended burst: offered load past capacity, population pinned at
/// the scheduler's node-limit gate — the frozen oracle's worst regime.
const BURST_RATE_PER_S: f64 = 3.0;
const BURST_MIB: u64 = 2048;
const SPEEDUP_ARRIVALS: usize = 10_000;

/// Admission throughput (admissions per CPU-second) and simulation
/// events per admission for one served stream. The first is a timing
/// measurement; the second is deterministic.
fn serve(arrivals: usize, rate_per_s: f64, app_mib: u64, mode: AdmissionMode) -> (f64, f64) {
    serve_policy(
        arrivals,
        rate_per_s,
        app_mib,
        mode,
        SchedPolicyKind::LeastLoadedServer,
    )
}

/// [`serve`] with an explicit placement policy — the adaptive-overhead
/// gate serves the same stream under `AdaptiveStriping`, whose feedback
/// loop adds periodic evaluation events to the session calendar.
fn serve_policy(
    arrivals: usize,
    rate_per_s: f64,
    app_mib: u64,
    mode: AdmissionMode,
    policy: SchedPolicyKind,
) -> (f64, f64) {
    let factory = RngFactory::new(7).derive("sched_scale", 0);
    let cfg = ior::IorConfig::paper_default(1)
        .with_ppn(4)
        .with_total_bytes(app_mib * MIB);
    let stream = ArrivalStream::poisson(
        rate_per_s,
        arrivals,
        cfg,
        4,
        &mut factory.stream("arrivals", 0),
    );
    let mut fs = deploy(Scenario::S1Ethernet, 4, beegfs_core::ChooserKind::Random);
    let t0 = Instant::now();
    let cpu0 = cpu_seconds(t0);
    let out = Scheduler::new(&mut fs, policy.build())
        .mode(mode)
        .serve(&stream, &factory)
        .expect("bench stream is schedulable");
    let elapsed = cpu_seconds(t0) - cpu0;
    assert_eq!(out.apps.len(), arrivals, "every arrival must complete");
    (
        arrivals as f64 / elapsed,
        out.sim_events as f64 / arrivals as f64,
    )
}

/// Pull `"key": <float>` out of the committed baseline without a JSON
/// dependency; returns `None` when the key is absent or malformed.
fn extract_f64(json: &str, key: &str) -> Option<f64> {
    let pat = format!("\"{key}\":");
    let rest = &json[json.find(&pat)? + pat.len()..];
    let end = rest.find([',', '\n', '}']).unwrap_or(rest.len());
    rest[..end].trim().parse().ok()
}

fn main() {
    // Large sessions are allocator-bound under default glibc tuning —
    // the engine's buffers grow through hundreds of MB and the kernel
    // time for mapping churn swamps the simulation (see
    // `simcore::alloc_tuning`).
    simcore::alloc_tuning::tune_for_long_sessions();
    // Warm caches and the allocator before timing anything.
    serve(1_000, RATE_PER_S, APP_MIB, AdmissionMode::Online);

    let mut online_aps = Vec::with_capacity(ONLINE_SWEEP.len());
    let mut online_epa = Vec::with_capacity(ONLINE_SWEEP.len());
    for &n in &ONLINE_SWEEP {
        let (aps, epa) = serve(n, RATE_PER_S, APP_MIB, AdmissionMode::Online);
        println!(
            "online  {n:>9} arrivals: {aps:.0} admissions/cpu-s, {epa:.1} sim events/admission"
        );
        online_aps.push(aps);
        online_epa.push(epa);
    }
    // Re-measure the 1e4 rung immediately after the 1e6 rung: the
    // scaling ratio must compare measurements taken under the same host
    // conditions, and minutes pass between the sweep's 1e4 rung and the
    // 1e6 rung on CI hardware.
    let (online_1e4_post, _) = serve(ONLINE_SWEEP[1], RATE_PER_S, APP_MIB, AdmissionMode::Online);
    println!(
        "online  {:>9} arrivals: {online_1e4_post:.0} admissions/cpu-s (post-sweep re-measure)",
        ONLINE_SWEEP[1]
    );
    // Adaptive-overhead rung, adjacent to the post-sweep re-measure so
    // the ratio compares measurements under the same host conditions:
    // the same 1e4 stream served under `AdaptiveStriping`, whose
    // feedback loop schedules periodic evaluation events and walks every
    // running application at each one.
    let (adaptive_1e4, adaptive_epa) = serve_policy(
        ONLINE_SWEEP[1],
        RATE_PER_S,
        APP_MIB,
        AdmissionMode::Online,
        SchedPolicyKind::AdaptiveStriping,
    );
    println!(
        "adaptive {:>8} arrivals: {adaptive_1e4:.0} admissions/cpu-s, \
         {adaptive_epa:.1} sim events/admission",
        ONLINE_SWEEP[1]
    );
    let (burst_online, _) = serve(
        SPEEDUP_ARRIVALS,
        BURST_RATE_PER_S,
        BURST_MIB,
        AdmissionMode::Online,
    );
    println!("burst online {SPEEDUP_ARRIVALS:>6} arrivals: {burst_online:.0} admissions/cpu-s");
    let (burst_frozen, _) = serve(
        SPEEDUP_ARRIVALS,
        BURST_RATE_PER_S,
        BURST_MIB,
        AdmissionMode::FrozenOracle,
    );
    println!("burst frozen {SPEEDUP_ARRIVALS:>6} arrivals: {burst_frozen:.0} admissions/cpu-s");

    let online_1e4 = online_aps[1].max(online_1e4_post);
    let online_1e6 = online_aps[3];
    let speedup = burst_online / burst_frozen;
    let scaling = online_1e6 / online_1e4_post;
    let work_ratio = online_epa[3] / online_epa[1];
    let adaptive_overhead = online_1e4_post / adaptive_1e4;
    let adaptive_work = adaptive_epa / online_epa[1];

    let out = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_sched_scale.json");
    let baseline = std::fs::read_to_string(out)
        .ok()
        .and_then(|s| extract_f64(&s, "online_aps_1e4"));

    let json = format!(
        "{{\n  \"rate_per_s\": {RATE_PER_S},\n  \
         \"online_aps_1e3\": {:.0},\n  \"online_aps_1e4\": {:.0},\n  \
         \"online_aps_1e5\": {:.0},\n  \"online_aps_1e6\": {:.0},\n  \
         \"online_aps_1e4_post\": {online_1e4_post:.0},\n  \
         \"adaptive_aps_1e4\": {adaptive_1e4:.0},\n  \
         \"adaptive_overhead_1e4\": {adaptive_overhead:.2},\n  \
         \"adaptive_events_per_admission_1e4\": {adaptive_epa:.1},\n  \
         \"burst_online_aps_1e4\": {burst_online:.0},\n  \
         \"burst_frozen_aps_1e4\": {burst_frozen:.0},\n  \
         \"speedup_1e4\": {speedup:.2},\n  \"scaling_1e6_vs_1e4\": {scaling:.2},\n  \
         \"events_per_admission_1e4\": {:.1},\n  \
         \"events_per_admission_1e6\": {:.1},\n  \
         \"work_ratio_1e6_vs_1e4\": {work_ratio:.3}\n}}\n",
        online_aps[0], online_aps[1], online_aps[2], online_aps[3], online_epa[1], online_epa[3],
    );
    std::fs::write(out, &json).expect("write bench json");
    println!("online vs frozen on the contended burst at 1e4: {speedup:.1}x");
    println!(
        "adaptive feedback overhead at 1e4: {adaptive_overhead:.2}x time, \
         {adaptive_work:.2}x sim events"
    );
    println!("online 1e6/1e4 work per admission ratio: {work_ratio:.3}");
    println!("online 1e6/1e4 throughput ratio: {scaling:.2}");
    println!("wrote {out}");

    if speedup < 10.0 {
        eprintln!(
            "FAIL: online engine speedup {speedup:.2}x over the frozen oracle \
             on the contended 1e4 burst is below the required 10x"
        );
        std::process::exit(1);
    }
    // Deterministic near-linearity gate: events per admission is exactly
    // reproducible run to run, so any drift here is a real regression.
    if work_ratio > 2.0 {
        eprintln!(
            "FAIL: simulation work per admission grew {work_ratio:.2}x from 1e4 \
             to 1e6 arrivals (amortized-O(1) admission requires <= 2x)"
        );
        std::process::exit(1);
    }
    // Collapse detector, not a percentage certification: host
    // memory-subsystem contention moves even CPU time 2-3x on minute
    // scales, while a superlinear admission regression at 100x the
    // stream length lands near 0.01.
    if scaling < 0.1 {
        eprintln!(
            "FAIL: admission throughput collapsed with stream length: \
             1e6 throughput is {:.0}% of the adjacent 1e4 re-measure \
             (floor 10%)",
            scaling * 100.0
        );
        std::process::exit(1);
    }
    // Adaptive sessions must stay within 1.5x of the plain online
    // engine on the same stream: the feedback loop is periodic O(running
    // apps) arithmetic over solver state the engine already maintains,
    // not a re-simulation. Measured back-to-back in CPU time, so the
    // ratio cancels host speed; the deterministic event-count ratio
    // backs it up against calendar-storm regressions.
    if adaptive_overhead > 1.5 {
        eprintln!(
            "FAIL: AdaptiveStriping session is {adaptive_overhead:.2}x slower than \
             the plain online engine at 1e4 arrivals (bound 1.5x): \
             {adaptive_1e4:.0}/s vs {online_1e4_post:.0}/s"
        );
        std::process::exit(1);
    }
    if adaptive_work > 2.0 {
        eprintln!(
            "FAIL: AdaptiveStriping adds {adaptive_work:.2}x simulation events per \
             admission over the plain online engine (bound 2x: evaluation \
             events must stay proportional to the calendar, not explode it)"
        );
        std::process::exit(1);
    }
    if let Some(base) = baseline {
        if online_1e4 < 0.25 * base {
            eprintln!(
                "FAIL: online admission throughput at 1e4 arrivals regressed: \
                 {online_1e4:.0}/s vs committed baseline {base:.0}/s (floor 25%)"
            );
            std::process::exit(1);
        }
    } else {
        println!("note: no committed baseline found; regression gate skipped");
    }
    println!("PASS");
}
