//! Bench: the beyond-paper chooser ablation (round-robin vs random vs
//! balanced target selection).

use bench::bench_ctx;
use criterion::{criterion_group, criterion_main, Criterion};
use experiments::{policy, Scenario};

fn bench(c: &mut Criterion) {
    let ctx = bench_ctx();
    for scenario in [Scenario::S1Ethernet, Scenario::S2Omnipath] {
        let p = policy::run(&ctx, scenario);
        for chooser in policy::CHOOSERS {
            let s4 = p.cell(chooser, 4).summary();
            println!(
                "policy {scenario:?} {chooser:?} stripe4: {:.0} ± {:.0} MiB/s",
                s4.mean, s4.sd
            );
        }
        c.bench_function(format!("policy/{scenario:?}"), |b| {
            b.iter(|| policy::run(&ctx, scenario))
        });
    }
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench
}
criterion_main!(benches);
