//! Bench: regenerate Figure 4 (node-count sweep) per scenario.

use bench::bench_ctx;
use criterion::{criterion_group, criterion_main, Criterion};
use experiments::{fig04_nodes, Scenario};

fn bench(c: &mut Criterion) {
    let ctx = bench_ctx();
    for scenario in [Scenario::S1Ethernet, Scenario::S2Omnipath] {
        let fig = fig04_nodes::run(&ctx, scenario);
        for p in &fig.points {
            println!(
                "fig04 {scenario:?} {:>2} nodes: mean {:.0} MiB/s",
                p.nodes,
                p.summary().mean
            );
        }
        println!(
            "fig04 {scenario:?}: plateau {} nodes, gain {:+.0}%",
            fig.plateau_nodes(0.05),
            fig.gain_to_plateau() * 100.0
        );
        c.bench_function(format!("fig04/{scenario:?}"), |b| {
            b.iter(|| fig04_nodes::run(&ctx, scenario))
        });
    }
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench
}
criterion_main!(benches);
