//! Bench: regenerate Figures 12 and 13 (concurrent applications and the
//! shared-vs-disjoint target analysis).

use bench::bench_ctx;
use criterion::{criterion_group, criterion_main, Criterion};
use experiments::{fig12_concurrent, fig13_sharing, ExpCtx};

fn bench(c: &mut Criterion) {
    let ctx = bench_ctx();
    let fig = fig12_concurrent::run(&ctx);
    for cell in &fig.cells {
        println!(
            "fig12 k={} s={}: aggregate {:.0} vs scaled {:.0} MiB/s ({:+.1}%)",
            cell.n_apps,
            cell.stripe_count,
            cell.aggregate_mean,
            cell.scaled_mean,
            cell.aggregate_degradation() * 100.0
        );
    }
    c.bench_function("fig12", |b| b.iter(|| fig12_concurrent::run(&ctx)));

    // Fig. 13 needs both allocation groups populated, hence more reps.
    let ctx13 = ExpCtx::quick(40);
    let fig13 = fig13_sharing::run(&ctx13);
    println!(
        "fig13: shared n={} mean {:.0}; disjoint n={} mean {:.0}; Welch p={:.4}",
        fig13.shared_same.len(),
        fig13.welch.mean_a,
        fig13.all_different.len(),
        fig13.welch.mean_b,
        fig13.welch.p_two_sided
    );
    c.bench_function("fig13", |b| b.iter(|| fig13_sharing::run(&ctx13)));
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench
}
criterion_main!(benches);
