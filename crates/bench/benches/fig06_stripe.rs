//! Bench: regenerate Figures 6, 8 and 10 (stripe-count sweep and its
//! (min,max)-allocation box plots).

use bench::bench_ctx;
use criterion::{criterion_group, criterion_main, Criterion};
use experiments::{fig06_stripe, Scenario};

fn bench(c: &mut Criterion) {
    let ctx = bench_ctx();
    for scenario in [Scenario::S1Ethernet, Scenario::S2Omnipath] {
        let fig = fig06_stripe::run(&ctx, scenario);
        for p in &fig.points {
            println!(
                "fig06 {scenario:?} stripe {}: mean {:.0} MiB/s, allocations {:?}",
                p.stripe_count,
                p.summary().mean,
                p.allocation_labels()
            );
        }
        for (label, bp, _) in fig.by_allocation() {
            println!(
                "fig08/10 {scenario:?} {label}: median {:.0} MiB/s",
                bp.median
            );
        }
        c.bench_function(format!("fig06/{scenario:?}"), |b| {
            b.iter(|| fig06_stripe::run(&ctx, scenario))
        });
    }
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench
}
criterion_main!(benches);
