//! Solver hot-path benchmark: many small flows through the fluid loop,
//! incremental allocation-free solver vs. the retained reference solver.
//!
//! Not a Criterion target: it times a fixed rep workload in both modes,
//! writes `BENCH_flow_hotpath.json` at the repository root, and enforces
//! two gates so CI catches hot-path regressions:
//!
//! * the incremental solver must be at least 2x the reference solver's
//!   reps/sec on this workload (the speedup the rework claims);
//! * the incremental reps/sec must not drop below 70% of the committed
//!   `BENCH_flow_hotpath.json` baseline.
//!
//! The workload is solver-bound by design: hundreds of registered flows
//! arriving in small staggered batches over a few resources, so every
//! completion re-solves while the *active* set stays small. The
//! reference solver rescans every registered flow and reallocates its
//! work vectors per solve; the incremental solver walks the active list
//! with warm scratch buffers and skips no-op solves outright.

use simcore::flow::{CapacityModel, FlowNetwork, FluidSim, SimArena};
use simcore::SimTime;
use std::time::Instant;

const REPS: usize = 15;
const FLOWS_PER_REP: u64 = 2000;

fn build_net() -> FlowNetwork {
    let mut net = FlowNetwork::new();
    net.add_resource("link0", CapacityModel::Fixed(4000.0));
    net.add_resource("link1", CapacityModel::Fixed(5000.0));
    for i in 0..8 {
        net.add_resource(
            format!("ost{i}"),
            CapacityModel::Saturating {
                peak: 900.0,
                q_half: 1.5,
            },
        );
    }
    net
}

fn one_rep(reference: bool, arena: &mut SimArena) -> f64 {
    let net = build_net();
    let links: Vec<_> = (0..2).map(simcore::flow::ResourceId::from_index).collect();
    let targets: Vec<_> = (2..10).map(simcore::flow::ResourceId::from_index).collect();

    let mut sim = FluidSim::with_arena(net, arena);
    sim.set_reference_solver(reference);
    for i in 0..FLOWS_PER_REP {
        let path = vec![
            links[(i % 2) as usize],
            targets[(i % targets.len() as u64) as usize],
        ];
        // Small flows in staggered batches, arriving slower than they
        // drain: the *registered* flow count grows into the thousands
        // while the *active* set stays around batch size, which is the
        // regime the incremental solver targets (the reference rescans
        // every registered flow on every solve).
        let start = SimTime::from_secs_f64((i / 8) as f64 * 0.25);
        sim.start_flow_at(start, path, 10.0 + (i * 13 % 17) as f64, i);
    }
    let flap = targets[3];
    sim.schedule_factor_change(SimTime::from_secs_f64(0.4), flap, 0.2);
    sim.schedule_factor_change(SimTime::from_secs_f64(1.2), flap, 1.0);

    let t0 = Instant::now();
    let mut done = 0u64;
    while sim.next_completion().is_some() {
        done += 1;
    }
    let elapsed = t0.elapsed().as_secs_f64();
    assert_eq!(done, FLOWS_PER_REP, "every flow must complete");
    sim.recycle_into(arena);
    elapsed
}

fn median(mut xs: Vec<f64>) -> f64 {
    xs.sort_by(f64::total_cmp);
    xs[xs.len() / 2]
}

/// Pull `"key": <float>` out of the committed baseline without a JSON
/// dependency; returns `None` when the key is absent or malformed.
fn extract_f64(json: &str, key: &str) -> Option<f64> {
    let pat = format!("\"{key}\":");
    let rest = &json[json.find(&pat)? + pat.len()..];
    let end = rest.find([',', '\n', '}']).unwrap_or(rest.len());
    rest[..end].trim().parse().ok()
}

fn main() {
    let mut arena = SimArena::new();
    // Warm caches, allocator, and the arena before timing anything.
    one_rep(false, &mut arena);
    one_rep(true, &mut arena);

    // Interleave the modes so environmental drift hits both equally.
    let mut incremental = Vec::with_capacity(REPS);
    let mut reference = Vec::with_capacity(REPS);
    for _ in 0..REPS {
        incremental.push(one_rep(false, &mut arena));
        reference.push(one_rep(true, &mut arena));
    }

    let inc_rps = 1.0 / median(incremental);
    let ref_rps = 1.0 / median(reference);
    let speedup = inc_rps / ref_rps;

    let out = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_flow_hotpath.json");
    let baseline_rps = std::fs::read_to_string(out)
        .ok()
        .and_then(|s| extract_f64(&s, "incremental_reps_per_sec"));

    let json = format!(
        "{{\n  \"reps\": {REPS},\n  \"flows_per_rep\": {FLOWS_PER_REP},\n  \
         \"incremental_reps_per_sec\": {inc_rps:.2},\n  \
         \"reference_reps_per_sec\": {ref_rps:.2},\n  \"speedup\": {speedup:.2}\n}}\n"
    );
    std::fs::write(out, &json).expect("write bench json");
    println!(
        "incremental {inc_rps:.1} reps/s, reference {ref_rps:.1} reps/s ({speedup:.2}x speedup)"
    );
    println!("wrote {out}");

    if speedup < 2.0 {
        eprintln!("FAIL: incremental solver speedup {speedup:.2}x is below the required 2x");
        std::process::exit(1);
    }
    if let Some(base) = baseline_rps {
        if inc_rps < 0.7 * base {
            eprintln!(
                "FAIL: incremental reps/sec regressed: {inc_rps:.1} < 70% of committed baseline {base:.1}"
            );
            std::process::exit(1);
        }
        println!("baseline check passed ({inc_rps:.1} vs committed {base:.1} reps/s)");
    } else {
        println!("no committed baseline found; wrote a fresh one");
    }
}
