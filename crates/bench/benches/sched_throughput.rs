//! Scheduler placement throughput: how many placement decisions per
//! second each policy sustains on the scenario-1 platform.
//!
//! Not a Criterion target: it times the pure decision loop (no fluid
//! simulation — the cluster view is synthesized and perturbed between
//! calls) over a fixed number of arrivals per round, and writes
//! `BENCH_sched_throughput.json` at the repository root so CI can keep
//! an eye on placement staying microseconds-cheap.

use cluster::presets;
use sched::{
    ClusterView, LeastLoadedServer, PlacementPolicy, Random, RoundRobinServer, StragglerAware,
    UtilizationFeedback,
};
use simcore::rng::RngFactory;
use std::time::Instant;

/// Placement decisions per timed round.
const ARRIVALS: usize = 10_000;
/// Timed rounds per policy (interleaved; the median is reported).
const ROUNDS: usize = 5;

fn policies() -> Vec<Box<dyn PlacementPolicy>> {
    vec![
        Box::new(Random),
        Box::<RoundRobinServer>::default(),
        Box::new(LeastLoadedServer),
        Box::new(UtilizationFeedback),
        Box::new(StragglerAware),
    ]
}

/// One timed round: `ARRIVALS` decisions with the view perturbed
/// deterministically between calls, so load-sensitive policies cannot
/// shortcut on a constant input.
fn one_round(policy: &mut dyn PlacementPolicy) -> f64 {
    let platform = presets::plafrim_ethernet();
    let online = vec![true; platform.total_targets()];
    let mut outstanding = vec![0.0f64; platform.server_count()];
    let mut busy = vec![0.0f64; platform.total_targets()];
    let mut suspected = vec![false; platform.total_targets()];
    let mut rng = RngFactory::new(7).stream("sched-throughput", 0);
    let mut picked = 0usize;
    let start = Instant::now();
    for i in 0..ARRIVALS {
        let servers = outstanding.len();
        let targets = busy.len();
        outstanding[i % servers] = (i % 97) as f64 * 1e9;
        busy[i % targets] = (i % 89) as f64 / 89.0;
        suspected[i % targets] = i % 13 == 0;
        let view = ClusterView {
            platform: &platform,
            online: &online,
            outstanding_bytes: &outstanding,
            busy_fraction: &busy,
            suspected: &suspected,
        };
        let placement = policy
            .place(&view, 4, 4 << 30, &mut rng)
            .expect("placement on a healthy pool");
        picked += match placement {
            sched::Placement::Pinned(ts) => ts.len(),
            sched::Placement::Deferred => 1,
        };
    }
    let secs = start.elapsed().as_secs_f64();
    assert!(picked >= ARRIVALS, "decisions went missing");
    ARRIVALS as f64 / secs
}

fn median(mut xs: Vec<f64>) -> f64 {
    xs.sort_by(f64::total_cmp);
    xs[xs.len() / 2]
}

fn main() {
    // Warm-up round per policy before timing anything.
    for p in policies().iter_mut() {
        one_round(p.as_mut());
    }
    // Interleave rounds across policies so drift hits all of them.
    let mut series: Vec<Vec<f64>> = policies().iter().map(|_| Vec::new()).collect();
    for _ in 0..ROUNDS {
        for (i, p) in policies().iter_mut().enumerate() {
            series[i].push(one_round(p.as_mut()));
        }
    }
    let names: Vec<&'static str> = policies().iter().map(|p| p.name()).collect();
    let entries: Vec<String> = names
        .iter()
        .zip(&series)
        .map(|(name, s)| format!("  \"{name}_decisions_per_sec\": {:.0}", median(s.clone())))
        .collect();
    let json = format!(
        "{{\n  \"arrivals_per_round\": {ARRIVALS},\n  \"rounds\": {ROUNDS},\n{}\n}}\n",
        entries.join(",\n")
    );
    let out = concat!(
        env!("CARGO_MANIFEST_DIR"),
        "/../../BENCH_sched_throughput.json"
    );
    std::fs::write(out, &json).expect("write bench json");
    for (name, s) in names.iter().zip(&series) {
        println!(
            "{name}: {:.0} decisions/sec (median of {ROUNDS})",
            median(s.clone())
        );
    }
    println!("wrote {out}");
}
