//! Bench: regenerate Figure 11 (node sweeps per stripe count, S2).

use bench::bench_ctx;
use criterion::{criterion_group, criterion_main, Criterion};
use experiments::fig11_nodes_stripe;

fn bench(c: &mut Criterion) {
    let ctx = bench_ctx();
    let fig = fig11_nodes_stripe::run(&ctx);
    for &s in &fig.stripe_counts {
        let series: Vec<String> = fig
            .node_counts
            .iter()
            .map(|&n| format!("{:.0}", fig.mean(s, n)))
            .collect();
        println!("fig11 stripe {s}: {}", series.join(" "));
    }
    c.bench_function("fig11", |b| b.iter(|| fig11_nodes_stripe::run(&ctx)));
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench
}
criterion_main!(benches);
