//! Metrics overhead check: the flow_hotpath workload with no registry
//! attached vs. with solver introspection enabled and harvested into a
//! [`obs::metrics::MetricsRegistry`] every rep.
//!
//! Not a Criterion target: it runs a fixed rep workload in both modes,
//! writes `BENCH_metrics_overhead.json` at the repository root, and
//! enforces two gates so the "zero cost when disabled" claim stays true
//! in CI instead of decaying the way the tracing overhead once did:
//!
//! * metrics-off reps/sec must stay at or above 95% of the committed
//!   `BENCH_flow_hotpath.json` incremental baseline — the workload is
//!   identical, so a gap here is instrumentation leaking into the
//!   disabled path (dirty-histogram upkeep, counter indirection);
//! * metrics-on overhead must stay under the `max_overhead_frac`
//!   threshold committed in this bench's own output file.

use simcore::flow::{CapacityModel, FlowNetwork, FluidSim, SimArena};
use simcore::SimTime;
use std::time::Instant;

const REPS: usize = 15;
const FLOWS_PER_REP: u64 = 2000;

fn build_net() -> FlowNetwork {
    let mut net = FlowNetwork::new();
    net.add_resource("link0", CapacityModel::Fixed(4000.0));
    net.add_resource("link1", CapacityModel::Fixed(5000.0));
    for i in 0..8 {
        net.add_resource(
            format!("ost{i}"),
            CapacityModel::Saturating {
                peak: 900.0,
                q_half: 1.5,
            },
        );
    }
    net
}

/// One flow_hotpath rep; when `registry` is set the sim collects its
/// introspection histograms and harvests everything into the registry
/// inside the timed region (that harvest is part of what a campaign rep
/// pays, so it belongs in the measurement).
fn one_rep(registry: Option<&mut obs::metrics::MetricsRegistry>, arena: &mut SimArena) -> f64 {
    let net = build_net();
    let links: Vec<_> = (0..2).map(simcore::flow::ResourceId::from_index).collect();
    let targets: Vec<_> = (2..10).map(simcore::flow::ResourceId::from_index).collect();

    let mut sim = FluidSim::with_arena(net, arena);
    if registry.is_some() {
        sim.enable_metrics();
    }
    for i in 0..FLOWS_PER_REP {
        let path = vec![
            links[(i % 2) as usize],
            targets[(i % targets.len() as u64) as usize],
        ];
        let start = SimTime::from_secs_f64((i / 8) as f64 * 0.25);
        sim.start_flow_at(start, path, 10.0 + (i * 13 % 17) as f64, i);
    }
    let flap = targets[3];
    sim.schedule_factor_change(SimTime::from_secs_f64(0.4), flap, 0.2);
    sim.schedule_factor_change(SimTime::from_secs_f64(1.2), flap, 1.0);

    let t0 = Instant::now();
    let mut done = 0u64;
    while sim.next_completion().is_some() {
        done += 1;
    }
    if let Some(reg) = registry {
        sim.metrics_into(reg);
    }
    let elapsed = t0.elapsed().as_secs_f64();
    assert_eq!(done, FLOWS_PER_REP, "every flow must complete");
    sim.recycle_into(arena);
    elapsed
}

fn median(mut xs: Vec<f64>) -> f64 {
    xs.sort_by(f64::total_cmp);
    xs[xs.len() / 2]
}

/// Pull `"key": <float>` out of a committed baseline without a JSON
/// dependency; returns `None` when the key is absent or malformed.
fn extract_f64(json: &str, key: &str) -> Option<f64> {
    let pat = format!("\"{key}\":");
    let rest = &json[json.find(&pat)? + pat.len()..];
    let end = rest.find([',', '\n', '}']).unwrap_or(rest.len());
    rest[..end].trim().parse().ok()
}

fn main() {
    let mut arena = SimArena::new();
    let mut registry = obs::metrics::MetricsRegistry::new();
    // Warm caches, allocator, and the arena before timing anything.
    one_rep(None, &mut arena);
    one_rep(Some(&mut registry), &mut arena);

    // Interleave the modes so environmental drift hits both equally.
    let mut off = Vec::with_capacity(REPS);
    let mut on = Vec::with_capacity(REPS);
    for _ in 0..REPS {
        off.push(one_rep(None, &mut arena));
        on.push(one_rep(Some(&mut registry), &mut arena));
    }
    assert!(
        registry.counter("sim.events_processed") > 0
            && registry.histogram("sim.dirty_component_size").is_some(),
        "metered reps recorded nothing"
    );

    let off_rps = 1.0 / median(off);
    let on_rps = 1.0 / median(on);
    let overhead = off_rps / on_rps - 1.0;

    let out = concat!(
        env!("CARGO_MANIFEST_DIR"),
        "/../../BENCH_metrics_overhead.json"
    );
    let max_overhead = std::fs::read_to_string(out)
        .ok()
        .and_then(|s| extract_f64(&s, "max_overhead_frac"))
        .unwrap_or(0.10);
    let hotpath_baseline = std::fs::read_to_string(concat!(
        env!("CARGO_MANIFEST_DIR"),
        "/../../BENCH_flow_hotpath.json"
    ))
    .ok()
    .and_then(|s| extract_f64(&s, "incremental_reps_per_sec"));

    let json = format!(
        "{{\n  \"reps\": {REPS},\n  \"flows_per_rep\": {FLOWS_PER_REP},\n  \
         \"metrics_off_reps_per_sec\": {off_rps:.2},\n  \
         \"metrics_on_reps_per_sec\": {on_rps:.2},\n  \
         \"metrics_on_overhead_frac\": {overhead:.4},\n  \
         \"max_overhead_frac\": {max_overhead}\n}}\n"
    );
    std::fs::write(out, &json).expect("write bench json");
    println!(
        "metrics off {off_rps:.1} reps/s, on {on_rps:.1} reps/s ({:+.1}% with a registry harvested)",
        overhead * 100.0
    );
    println!("wrote {out}");

    if let Some(base) = hotpath_baseline {
        if off_rps < 0.95 * base {
            eprintln!(
                "FAIL: metrics-off {off_rps:.1} reps/s is below 95% of the committed \
                 flow_hotpath baseline {base:.1} — the disabled path is no longer free"
            );
            std::process::exit(1);
        }
        println!("zero-cost check passed ({off_rps:.1} vs committed hotpath {base:.1} reps/s)");
    } else {
        println!("no committed flow_hotpath baseline; skipping the zero-cost check");
    }
    if overhead > max_overhead {
        eprintln!(
            "FAIL: metrics-on overhead {:.1}% exceeds the committed {:.1}% threshold",
            overhead * 100.0,
            max_overhead * 100.0
        );
        std::process::exit(1);
    }
}
