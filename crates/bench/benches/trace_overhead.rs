//! Tracing overhead check: the same scenario-1 stripe-4 run with no
//! recorder attached vs. recording into an [`obs::Timeline`].
//!
//! Not a Criterion target: it runs a fixed number of seeded runs per
//! mode and writes `BENCH_trace_overhead.json` at the repository root.
//! The run fails (exit 1) when the traced overhead exceeds the
//! `max_overhead_frac` threshold committed in that file, so emission-path
//! regressions fail CI instead of silently accumulating. (The recorded
//! overhead sat near 3% when tracing landed, then crept to ~23% as later
//! PRs made the *untraced* solve ~10x faster around a sampler that still
//! scanned every resource; the sampler now walks only the touched set
//! and the measured overhead is back to a few percent.)

use beegfs_core::FaultPlan;
use cluster::TargetId;
use ior::{AppSpec, IorConfig, RetryPolicy, Run};
use simcore::rng::RngFactory;
use std::time::Instant;

const RUNS: usize = 9;

fn scenario() -> beegfs_core::BeeGfs {
    experiments::context::deploy(
        experiments::Scenario::S1Ethernet,
        4,
        beegfs_core::ChooserKind::RoundRobin,
    )
}

fn plan() -> FaultPlan {
    FaultPlan::new()
        .target_offline(2.0, TargetId(1))
        .expect("valid fault time")
        .target_recovers(9.0, TargetId(1))
        .expect("valid recovery time")
}

fn one_run(seed: u64, timeline: Option<&mut obs::Timeline>) -> f64 {
    let mut fs = scenario();
    let mut rng = RngFactory::new(seed).stream("trace-overhead", 0);
    let run = Run::new(&mut fs)
        .app(AppSpec::pinned(
            IorConfig::paper_default(8),
            vec![TargetId(0), TargetId(1), TargetId(4), TargetId(5)],
        ))
        .faults(plan())
        .policy(RetryPolicy::default());
    let run = match timeline {
        Some(t) => run.trace(t),
        None => run,
    };
    let start = Instant::now();
    let (out, _) = run.execute(&mut rng).expect("bench run");
    assert!(out.sim_events > 0);
    start.elapsed().as_secs_f64()
}

fn median(mut xs: Vec<f64>) -> f64 {
    xs.sort_by(f64::total_cmp);
    xs[xs.len() / 2]
}

/// Pull a numeric field out of the committed baseline JSON (hand-rolled:
/// the file is this bench's own output, shape fully known).
fn extract_f64(json: &str, key: &str) -> Option<f64> {
    let pat = format!("\"{key}\":");
    let at = json.find(&pat)? + pat.len();
    let rest = json[at..].trim_start();
    let end = rest
        .find(|c: char| !(c.is_ascii_digit() || c == '.' || c == '-' || c == 'e' || c == 'E'))
        .unwrap_or(rest.len());
    rest[..end].parse().ok()
}

fn main() {
    // Warm up caches/allocator before timing anything.
    for seed in 0..2 {
        one_run(seed, None);
        one_run(seed, Some(&mut obs::Timeline::new()));
    }
    let mut untraced_a = Vec::with_capacity(RUNS);
    let mut untraced_b = Vec::with_capacity(RUNS);
    let mut traced = Vec::with_capacity(RUNS);
    // Interleave the modes so drift (thermal, scheduler) hits all of
    // them. Two untraced series bound the measurement noise: the real
    // no-recorder overhead (an `Option` check plus a counter increment
    // per event) cannot be resolved below that spread.
    for seed in 0..RUNS as u64 {
        untraced_a.push(one_run(seed, None));
        let mut timeline = obs::Timeline::new();
        traced.push(one_run(seed, Some(&mut timeline)));
        assert!(!timeline.is_empty(), "traced run recorded nothing");
        untraced_b.push(one_run(seed, None));
    }
    let untraced_ms = median(untraced_a) * 1e3;
    let untraced_b_ms = median(untraced_b) * 1e3;
    let noise = (untraced_b_ms / untraced_ms - 1.0).abs();
    let traced_ms = median(traced) * 1e3;
    let overhead = traced_ms / untraced_ms - 1.0;
    let out = concat!(
        env!("CARGO_MANIFEST_DIR"),
        "/../../BENCH_trace_overhead.json"
    );
    // Gate against the threshold committed with the previous numbers
    // (generous vs. the measured few percent: single-digit-millisecond
    // medians jitter, and the gate is for drift, not noise).
    let max_overhead = std::fs::read_to_string(out)
        .ok()
        .and_then(|s| extract_f64(&s, "max_overhead_frac"))
        .unwrap_or(0.15);
    let json = format!(
        "{{\n  \"runs\": {RUNS},\n  \"untraced_ms\": {untraced_ms:.3},\n  \
         \"untraced_ab_spread_frac\": {noise:.4},\n  \
         \"traced_ms\": {traced_ms:.3},\n  \"traced_overhead_frac\": {overhead:.4},\n  \
         \"max_overhead_frac\": {max_overhead}\n}}\n"
    );
    std::fs::write(out, &json).expect("write bench json");
    println!("untraced median {untraced_ms:.2} ms, traced median {traced_ms:.2} ms ({:+.1}% with a recorder attached)", overhead * 100.0);
    println!("wrote {out}");
    if overhead > max_overhead {
        eprintln!(
            "FAIL: traced overhead {:.1}% exceeds the committed {:.1}% threshold",
            overhead * 100.0,
            max_overhead * 100.0
        );
        std::process::exit(1);
    }
}
