//! Straggler-machinery overhead: the fault curves and hedging layer
//! added for straggler mitigation must be free when disabled and cheap
//! when enabled.
//!
//! Not a Criterion target: it times two legs, writes
//! `BENCH_straggler_overhead.json` at the repository root, and gates the
//! detector-off leg so CI catches the straggler machinery taxing the
//! solver hot path:
//!
//! * **detector-off** replays the exact `flow_hotpath` incremental
//!   workload (no fault curves, no hedging compiled in) and must stay
//!   within noise — at least 70% — of the committed
//!   `BENCH_flow_hotpath.json` incremental baseline;
//! * **detector-on** runs a full hedged IOR write (chunked drain,
//!   online detection, redirects) against a transient straggler, next
//!   to the same run unhedged, and reports the runs/sec ratio as
//!   `hedging_overhead` (informational — hedging splits each transfer
//!   into chunks, so some solver-side cost is expected and bought back
//!   many times over in simulated tail latency).

use beegfs_core::{
    plafrim_registration_order, BeeGfs, ChooserKind, DirConfig, FaultPlan, StripePattern,
};
use cluster::{presets, TargetId};
use ior::{HedgeConfig, IorConfig, Run};
use simcore::flow::{CapacityModel, FlowNetwork, FluidSim, SimArena};
use simcore::rng::RngFactory;
use simcore::SimTime;
use std::time::Instant;

/// Timed repetitions per leg (interleaved; the median is reported).
const REPS: usize = 15;
/// Flows per detector-off rep — matches `flow_hotpath` exactly so the
/// committed baseline is comparable.
const FLOWS_PER_REP: u64 = 2000;
/// IOR runs per detector-on rep.
const RUNS_PER_REP: usize = 8;

/// The `flow_hotpath` workload, incremental solver only: small flows in
/// staggered batches over two links and eight targets, with one target
/// flapping mid-stream. No fault plan, no hedging — this is the path
/// every healthy simulation takes, and it must not have slowed down.
fn detector_off_rep(arena: &mut SimArena) -> f64 {
    let mut net = FlowNetwork::new();
    net.add_resource("link0", CapacityModel::Fixed(4000.0));
    net.add_resource("link1", CapacityModel::Fixed(5000.0));
    for i in 0..8 {
        net.add_resource(
            format!("ost{i}"),
            CapacityModel::Saturating {
                peak: 900.0,
                q_half: 1.5,
            },
        );
    }
    let links: Vec<_> = (0..2).map(simcore::flow::ResourceId::from_index).collect();
    let targets: Vec<_> = (2..10).map(simcore::flow::ResourceId::from_index).collect();

    let mut sim = FluidSim::with_arena(net, arena);
    for i in 0..FLOWS_PER_REP {
        let path = vec![
            links[(i % 2) as usize],
            targets[(i % targets.len() as u64) as usize],
        ];
        let start = SimTime::from_secs_f64((i / 8) as f64 * 0.25);
        sim.start_flow_at(start, path, 10.0 + (i * 13 % 17) as f64, i);
    }
    let flap = targets[3];
    sim.schedule_factor_change(SimTime::from_secs_f64(0.4), flap, 0.2);
    sim.schedule_factor_change(SimTime::from_secs_f64(1.2), flap, 1.0);

    let t0 = Instant::now();
    let mut done = 0u64;
    while sim.next_completion().is_some() {
        done += 1;
    }
    let elapsed = t0.elapsed().as_secs_f64();
    assert_eq!(done, FLOWS_PER_REP, "every flow must complete");
    sim.recycle_into(arena);
    elapsed
}

fn deploy() -> BeeGfs {
    BeeGfs::new(
        presets::plafrim_omnipath(),
        DirConfig {
            pattern: StripePattern::new(4, 512 * 1024),
            chooser: ChooserKind::RoundRobin,
        },
        plafrim_registration_order(),
    )
}

/// One detector-on rep: `RUNS_PER_REP` IOR writes on the storage-bound
/// scenario-2 platform with a transient straggler in the capacity
/// curves, either hedged (chunked drain + detection + redirects) or
/// plain. Returns elapsed wall seconds.
fn detector_on_rep(hedged: bool, factory: &RngFactory) -> f64 {
    let plan = FaultPlan::new()
        .target_transient_straggler(1.0, TargetId(0), 0.12, 500.0)
        .expect("valid straggler parameters");
    let label = if hedged { "on-hedged" } else { "on-plain" };
    let t0 = Instant::now();
    for rep in 0..RUNS_PER_REP {
        let mut fs = deploy();
        let mut rng = factory.stream(label, rep as u64);
        let mut run = Run::new(&mut fs)
            .app(IorConfig::paper_default(8))
            .faults(plan.clone());
        if hedged {
            run = run.hedge(HedgeConfig::default());
        }
        let (out, _) = run.execute(&mut rng).expect("straggler run");
        assert!(out.try_single().expect("one app").duration_s > 0.0);
    }
    t0.elapsed().as_secs_f64()
}

fn median(mut xs: Vec<f64>) -> f64 {
    xs.sort_by(f64::total_cmp);
    xs[xs.len() / 2]
}

/// Pull `"key": <float>` out of a committed baseline without a JSON
/// dependency; returns `None` when the key is absent or malformed.
fn extract_f64(json: &str, key: &str) -> Option<f64> {
    let pat = format!("\"{key}\":");
    let rest = &json[json.find(&pat)? + pat.len()..];
    let end = rest.find([',', '\n', '}']).unwrap_or(rest.len());
    rest[..end].trim().parse().ok()
}

fn main() {
    let factory = RngFactory::new(4242);
    let mut arena = SimArena::new();
    // Warm caches, allocator, and the arena before timing anything.
    detector_off_rep(&mut arena);
    detector_on_rep(false, &factory);
    detector_on_rep(true, &factory);

    // Interleave the legs so environmental drift hits all of them.
    let mut off = Vec::with_capacity(REPS);
    let mut on_plain = Vec::with_capacity(REPS);
    let mut on_hedged = Vec::with_capacity(REPS);
    for _ in 0..REPS {
        off.push(detector_off_rep(&mut arena));
        on_plain.push(detector_on_rep(false, &factory));
        on_hedged.push(detector_on_rep(true, &factory));
    }

    let off_rps = 1.0 / median(off);
    let plain_rps = RUNS_PER_REP as f64 / median(on_plain);
    let hedged_rps = RUNS_PER_REP as f64 / median(on_hedged);
    let overhead = plain_rps / hedged_rps;

    let baseline_path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_flow_hotpath.json");
    let baseline_rps = std::fs::read_to_string(baseline_path)
        .ok()
        .and_then(|s| extract_f64(&s, "incremental_reps_per_sec"));

    let out = concat!(
        env!("CARGO_MANIFEST_DIR"),
        "/../../BENCH_straggler_overhead.json"
    );
    let json = format!(
        "{{\n  \"reps\": {REPS},\n  \"flows_per_rep\": {FLOWS_PER_REP},\n  \
         \"runs_per_rep\": {RUNS_PER_REP},\n  \
         \"detector_off_reps_per_sec\": {off_rps:.2},\n  \
         \"plain_runs_per_sec\": {plain_rps:.2},\n  \
         \"hedged_runs_per_sec\": {hedged_rps:.2},\n  \
         \"hedging_overhead\": {overhead:.2}\n}}\n"
    );
    std::fs::write(out, &json).expect("write bench json");
    println!(
        "detector off: {off_rps:.1} reps/s; straggler runs: plain {plain_rps:.1}/s, \
         hedged {hedged_rps:.1}/s ({overhead:.2}x overhead)"
    );
    println!("wrote {out}");

    match baseline_rps {
        Some(base) if off_rps < 0.7 * base => {
            eprintln!(
                "FAIL: detector-off hot path regressed: {off_rps:.1} reps/s is below 70% \
                 of the committed flow_hotpath baseline {base:.1}"
            );
            std::process::exit(1);
        }
        Some(base) => {
            println!(
                "baseline check passed ({off_rps:.1} vs committed flow_hotpath {base:.1} reps/s)"
            );
        }
        None => println!("no committed flow_hotpath baseline found; detector-off gate skipped"),
    }
}
