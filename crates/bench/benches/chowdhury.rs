//! Bench: regenerate the Chowdhury single-node contrast.

use bench::bench_ctx;
use criterion::{criterion_group, criterion_main, Criterion};
use experiments::chowdhury;

fn bench(c: &mut Criterion) {
    let ctx = bench_ctx();
    let contrast = chowdhury::run(&ctx);
    for &s in &chowdhury::STRIPES {
        println!(
            "chowdhury stripe {s}: 1-node {:.0} MiB/s, 32-node {:.0} MiB/s",
            contrast.single_node.mean(s),
            contrast.many_nodes.mean(s)
        );
    }
    c.bench_function("chowdhury", |b| b.iter(|| chowdhury::run(&ctx)));
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench
}
criterion_main!(benches);
