//! Bench: regenerate Figure 5 (8 vs 16 processes per node).

use bench::bench_ctx;
use criterion::{criterion_group, criterion_main, Criterion};
use experiments::{fig05_ppn, Scenario};

fn bench(c: &mut Criterion) {
    let ctx = bench_ctx();
    for scenario in [Scenario::S1Ethernet, Scenario::S2Omnipath] {
        let fig = fig05_ppn::run(&ctx, scenario);
        println!(
            "fig05 {scenario:?}: max diff {:.1}%, signed {:+.1}%",
            fig.max_relative_difference() * 100.0,
            fig.mean_signed_difference() * 100.0
        );
        c.bench_function(format!("fig05/{scenario:?}"), |b| {
            b.iter(|| fig05_ppn::run(&ctx, scenario))
        });
    }
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench
}
criterion_main!(benches);
