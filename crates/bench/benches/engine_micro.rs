//! Micro-benchmarks of the simulation kernel: the max–min solver at
//! various flow counts, one full IOR run per scenario, target choosers,
//! and the statistical tests.

use beegfs_core::{plafrim_registration_order, BeeGfs, ChooserKind, DirConfig, StripePattern};
use cluster::presets;
use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use ior::{IorConfig, Run};
use iostats::{ks_normality_test, welch_t_test};
use simcore::flow::{CapacityModel, FlowNetwork, FluidSim};
use simcore::rng::RngFactory;
use simcore::SimTime;

fn maxmin_solver(c: &mut Criterion) {
    let mut group = c.benchmark_group("maxmin");
    for &flows in &[64usize, 512, 2048] {
        group.bench_function(format!("{flows}_flows"), |b| {
            b.iter_batched(
                || {
                    let mut net = FlowNetwork::new();
                    let resources: Vec<_> = (0..64)
                        .map(|i| net.add_resource(format!("r{i}"), CapacityModel::Fixed(1e9)))
                        .collect();
                    for f in 0..flows {
                        let path = vec![
                            resources[f % 16],
                            resources[16 + f % 32],
                            resources[48 + f % 16],
                        ];
                        let id = net.add_flow(path, 1e6, f as u64);
                        net.activate(id);
                    }
                    net
                },
                |mut net| net.recompute_rates(),
                BatchSize::SmallInput,
            )
        });
    }
    group.finish();
}

fn fluid_run(c: &mut Criterion) {
    c.bench_function("fluid/1000_flows_to_completion", |b| {
        b.iter_batched(
            || {
                let mut net = FlowNetwork::new();
                let r: Vec<_> = (0..32)
                    .map(|i| net.add_resource(format!("r{i}"), CapacityModel::Fixed(1e8)))
                    .collect();
                let mut sim = FluidSim::new(net);
                for f in 0..1000u64 {
                    let path = vec![r[(f % 16) as usize], r[16 + (f % 16) as usize]];
                    sim.start_flow_at(SimTime::ZERO, path, 1e6 + f as f64, f);
                }
                sim
            },
            |mut sim| sim.run_to_completion().len(),
            BatchSize::SmallInput,
        )
    });
}

fn full_ior_run(c: &mut Criterion) {
    let mut group = c.benchmark_group("ior_run");
    for (name, platform, nodes) in [
        ("s1_8nodes", presets::plafrim_ethernet(), 8usize),
        ("s2_32nodes", presets::plafrim_omnipath(), 32),
    ] {
        let factory = RngFactory::new(1);
        group.bench_function(name, |b| {
            let mut rep = 0u64;
            b.iter(|| {
                let mut fs = BeeGfs::new(
                    platform.clone(),
                    DirConfig::plafrim_default(),
                    plafrim_registration_order(),
                );
                let mut rng = factory.stream("bench", rep);
                rep += 1;
                let (out, _) = Run::new(&mut fs)
                    .app(IorConfig::paper_default(nodes))
                    .execute(&mut rng)
                    .unwrap();
                out.try_single().unwrap().bandwidth
            })
        });
    }
    group.finish();
}

fn choosers(c: &mut Criterion) {
    let platform = presets::plafrim_ethernet();
    let mut group = c.benchmark_group("chooser");
    for kind in [
        ChooserKind::RoundRobin,
        ChooserKind::Random,
        ChooserKind::Balanced,
    ] {
        let factory = RngFactory::new(2);
        group.bench_function(format!("{kind:?}"), |b| {
            let mut fs = BeeGfs::new(
                platform.clone(),
                DirConfig {
                    pattern: StripePattern::new(4, 512 * 1024),
                    chooser: kind,
                },
                plafrim_registration_order(),
            );
            let mut rng = factory.stream("chooser", 0);
            b.iter(|| fs.create_file(&mut rng).unwrap().0.targets.len())
        });
    }
    group.finish();
}

fn statistics(c: &mut Criterion) {
    let a: Vec<f64> = (0..200).map(|i| 1000.0 + (i * 37 % 101) as f64).collect();
    let b2: Vec<f64> = (0..200).map(|i| 1010.0 + (i * 53 % 97) as f64).collect();
    c.bench_function("stats/welch_200x200", |bch| {
        bch.iter(|| welch_t_test(&a, &b2).p_two_sided)
    });
    c.bench_function("stats/ks_normality_200", |bch| {
        bch.iter(|| ks_normality_test(&a).p)
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = maxmin_solver, fluid_run, full_ior_run, choosers, statistics
}
criterion_main!(benches);
