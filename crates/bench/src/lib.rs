//! Shared helpers for the Criterion benchmark targets.
//!
//! Each `benches/figXX_*.rs` target regenerates one paper table/figure at
//! a reduced repetition count and reports how long the regeneration
//! takes; the full-fidelity (100-repetition) regeneration lives in the
//! `experiments` crate's `repro` binary. `benches/engine_micro.rs` covers
//! the simulation kernel itself (max–min solver, fluid loop, choosers,
//! statistics).

use experiments::ExpCtx;

/// Repetitions used inside the figure bench targets (the paper uses 100;
/// benches use fewer so Criterion's own sampling stays tractable).
pub const BENCH_REPS: usize = 5;

/// The context every figure bench runs under.
pub fn bench_ctx() -> ExpCtx {
    ExpCtx::quick(BENCH_REPS)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_context_is_reduced_fidelity() {
        let ctx = bench_ctx();
        assert_eq!(ctx.reps, BENCH_REPS);
        assert_eq!(ctx.seed, ExpCtx::default().seed);
    }
}
