//! # iostats — statistics toolkit for I/O performance analysis
//!
//! The analysis machinery behind the paper's figures and hypothesis
//! tests:
//!
//! * [`summary`] — descriptive statistics, R-type-7 quantiles, Tukey box
//!   plots (Figs. 8/10), Sarle's bimodality coefficient (for detecting
//!   the bi-modal clouds of Fig. 6a);
//! * [`welch`] — Welch's unequal-variance t-test (the Fig. 13 analysis);
//! * [`ks`] — Kolmogorov–Smirnov tests, including the normality gate the
//!   paper applies before the t-test;
//! * [`agg`] — Equation 1, the aggregate bandwidth of concurrent
//!   applications;
//! * [`sketch`] — bounded-memory, mergeable streaming summaries over the
//!   `obs` metrics histograms, for pooling distributions across workers
//!   without holding the raw sample;
//! * [`special`] — the underlying special functions (log-gamma,
//!   regularized incomplete beta, Student-t CDF, normal CDF), implemented
//!   locally and verified against independent references.
//!
//! The crate is pure math: no simulation dependencies, usable on any
//! `&[f64]`.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod agg;
pub mod ks;
pub mod sketch;
pub mod special;
pub mod summary;
pub mod welch;

pub use agg::{aggregate_bandwidth, AppInterval};
pub use ks::{ks_normality_test, ks_test, KsResult};
pub use sketch::SketchSummary;
pub use summary::{BoxPlot, Summary};
pub use welch::{welch_t_test, WelchResult};
