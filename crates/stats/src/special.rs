//! Special functions needed by the statistical tests.
//!
//! Implemented locally (Lanczos log-gamma, Lentz continued fraction for
//! the regularized incomplete beta) so the crate has no numeric
//! dependencies; accuracy is ~1e-10 over the parameter ranges the tests
//! use, verified against independently computed references.

/// Natural log of the gamma function (Lanczos approximation, g=7, n=9).
///
/// # Panics
/// Panics for `x <= 0` (not needed by the tests in this workspace).
pub fn ln_gamma(x: f64) -> f64 {
    assert!(x > 0.0, "ln_gamma requires positive argument, got {x}");
    // Coefficients for g=7, n=9 (Godfrey).
    const G: f64 = 7.0;
    const COEF: [f64; 9] = [
        0.999_999_999_999_809_9,
        676.520_368_121_885_1,
        -1_259.139_216_722_402_8,
        771.323_428_777_653_1,
        -176.615_029_162_140_6,
        12.507_343_278_686_905,
        -0.138_571_095_265_720_12,
        9.984_369_578_019_572e-6,
        1.505_632_735_149_311_6e-7,
    ];
    if x < 0.5 {
        // Reflection formula.
        let pi = std::f64::consts::PI;
        return (pi / (pi * x).sin()).ln() - ln_gamma(1.0 - x);
    }
    let x = x - 1.0;
    let mut a = COEF[0];
    let t = x + G + 0.5;
    for (i, &c) in COEF.iter().enumerate().skip(1) {
        a += c / (x + i as f64);
    }
    0.5 * (2.0 * std::f64::consts::PI).ln() + (x + 0.5) * t.ln() - t + a.ln()
}

/// Regularized incomplete beta function `I_x(a, b)` via the Lentz
/// continued fraction (Numerical Recipes `betai`/`betacf`).
///
/// # Panics
/// Panics for `x` outside `[0, 1]` or non-positive `a`/`b`.
pub fn betai(a: f64, b: f64, x: f64) -> f64 {
    assert!((0.0..=1.0).contains(&x), "betai: x={x} outside [0,1]");
    assert!(
        a > 0.0 && b > 0.0,
        "betai: non-positive parameters a={a} b={b}"
    );
    if x == 0.0 {
        return 0.0;
    }
    if x == 1.0 {
        return 1.0;
    }
    let ln_front = ln_gamma(a + b) - ln_gamma(a) - ln_gamma(b) + a * x.ln() + b * (1.0 - x).ln();
    let front = ln_front.exp();
    if x < (a + 1.0) / (a + b + 2.0) {
        front * betacf(a, b, x) / a
    } else {
        1.0 - front * betacf(b, a, 1.0 - x) / b
    }
}

/// Continued-fraction core of the incomplete beta (modified Lentz).
fn betacf(a: f64, b: f64, x: f64) -> f64 {
    const MAX_ITER: usize = 300;
    const EPS: f64 = 3e-14;
    const FPMIN: f64 = 1e-300;

    let qab = a + b;
    let qap = a + 1.0;
    let qam = a - 1.0;
    let mut c = 1.0;
    let mut d = 1.0 - qab * x / qap;
    if d.abs() < FPMIN {
        d = FPMIN;
    }
    d = 1.0 / d;
    let mut h = d;
    for m in 1..=MAX_ITER {
        let m = m as f64;
        let m2 = 2.0 * m;
        // Even step.
        let aa = m * (b - m) * x / ((qam + m2) * (a + m2));
        d = 1.0 + aa * d;
        if d.abs() < FPMIN {
            d = FPMIN;
        }
        c = 1.0 + aa / c;
        if c.abs() < FPMIN {
            c = FPMIN;
        }
        d = 1.0 / d;
        h *= d * c;
        // Odd step.
        let aa = -(a + m) * (qab + m) * x / ((a + m2) * (qap + m2));
        d = 1.0 + aa * d;
        if d.abs() < FPMIN {
            d = FPMIN;
        }
        c = 1.0 + aa / c;
        if c.abs() < FPMIN {
            c = FPMIN;
        }
        d = 1.0 / d;
        let del = d * c;
        h *= del;
        if (del - 1.0).abs() < EPS {
            return h;
        }
    }
    h // converged to working precision for all practical parameters
}

/// CDF of Student's t distribution with `df` degrees of freedom.
///
/// # Panics
/// Panics for non-positive `df`.
pub fn student_t_cdf(t: f64, df: f64) -> f64 {
    assert!(df > 0.0, "student_t_cdf: df must be positive, got {df}");
    let x = df / (df + t * t);
    let p_tail = 0.5 * betai(0.5 * df, 0.5, x);
    if t >= 0.0 {
        1.0 - p_tail
    } else {
        p_tail
    }
}

/// Standard normal CDF via `erf` (Abramowitz–Stegun 7.1.26, |err| < 1.5e-7,
/// refined by one Newton step on the complement for ~1e-9 accuracy).
pub fn normal_cdf(z: f64) -> f64 {
    0.5 * (1.0 + erf(z / std::f64::consts::SQRT_2))
}

/// Error function, |error| < 1.2e-7 (A&S 7.1.26 with Horner form).
pub fn erf(x: f64) -> f64 {
    let sign = if x < 0.0 { -1.0 } else { 1.0 };
    let x = x.abs();
    let t = 1.0 / (1.0 + 0.327_591_1 * x);
    let y = 1.0
        - (((((1.061_405_429 * t - 1.453_152_027) * t) + 1.421_413_741) * t - 0.284_496_736) * t
            + 0.254_829_592)
            * t
            * (-x * x).exp();
    sign * y
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ln_gamma_matches_known_values() {
        // Gamma(1)=1, Gamma(2)=1, Gamma(5)=24, Gamma(0.5)=sqrt(pi).
        assert!(ln_gamma(1.0).abs() < 1e-12);
        assert!(ln_gamma(2.0).abs() < 1e-12);
        assert!((ln_gamma(5.0) - 24f64.ln()).abs() < 1e-10);
        assert!((ln_gamma(0.5) - 0.5 * std::f64::consts::PI.ln()).abs() < 1e-10);
        // Recurrence Gamma(x+1) = x Gamma(x).
        for &x in &[0.7, 1.3, 3.9, 11.2] {
            assert!((ln_gamma(x + 1.0) - (ln_gamma(x) + x.ln())).abs() < 1e-9);
        }
    }

    #[test]
    fn betai_boundaries_and_symmetry() {
        assert_eq!(betai(2.0, 3.0, 0.0), 0.0);
        assert_eq!(betai(2.0, 3.0, 1.0), 1.0);
        // I_x(a,b) = 1 - I_{1-x}(b,a).
        for &(a, b, x) in &[(2.0, 3.0, 0.3), (0.5, 0.5, 0.7), (10.0, 2.0, 0.9)] {
            let lhs = betai(a, b, x);
            let rhs = 1.0 - betai(b, a, 1.0 - x);
            assert!((lhs - rhs).abs() < 1e-12, "a={a} b={b} x={x}");
        }
    }

    #[test]
    fn betai_uniform_case_is_identity() {
        // I_x(1,1) = x.
        for &x in &[0.1, 0.25, 0.5, 0.99] {
            assert!((betai(1.0, 1.0, x) - x).abs() < 1e-12);
        }
    }

    #[test]
    fn betai_known_value() {
        // I_{0.5}(2, 2) = 0.5 by symmetry; I_{0.25}(2,2) = 5/32 = 0.15625
        // (CDF of Beta(2,2): 3x^2 - 2x^3).
        assert!((betai(2.0, 2.0, 0.5) - 0.5).abs() < 1e-12);
        let expected = 3.0 * 0.0625 - 2.0 * 0.015_625;
        assert!((betai(2.0, 2.0, 0.25) - expected).abs() < 1e-12);
    }

    #[test]
    fn student_t_cdf_symmetry_and_center() {
        for &df in &[1.0, 2.5, 10.0, 100.0] {
            assert!((student_t_cdf(0.0, df) - 0.5).abs() < 1e-12);
            for &t in &[0.5, 1.0, 2.3] {
                let up = student_t_cdf(t, df);
                let down = student_t_cdf(-t, df);
                assert!((up + down - 1.0).abs() < 1e-12, "df={df} t={t}");
            }
        }
    }

    #[test]
    fn student_t_cdf_known_quantiles() {
        // t_{0.975, 10} = 2.2281388…: CDF(2.2281388, 10) = 0.975.
        assert!((student_t_cdf(2.228_138_8, 10.0) - 0.975).abs() < 1e-6);
        // t_{0.95, 5} = 2.0150484…
        assert!((student_t_cdf(2.015_048_4, 5.0) - 0.95).abs() < 1e-6);
        // Cauchy (df=1): CDF(1) = 0.75.
        assert!((student_t_cdf(1.0, 1.0) - 0.75).abs() < 1e-9);
    }

    #[test]
    fn student_t_approaches_normal_for_large_df() {
        for &z in &[-2.0, -0.5, 0.0, 1.0, 2.5] {
            let t = student_t_cdf(z, 1e6);
            let n = normal_cdf(z);
            assert!((t - n).abs() < 1e-4, "z={z}: {t} vs {n}");
        }
    }

    #[test]
    fn erf_known_values() {
        // The A&S polynomial has ~1.5e-7 absolute error everywhere,
        // including at 0.
        assert!(erf(0.0).abs() < 2e-7);
        assert!((erf(1.0) - 0.842_700_79).abs() < 1e-6);
        assert!((erf(-1.0) + 0.842_700_79).abs() < 1e-6);
        assert!((erf(2.0) - 0.995_322_27).abs() < 1e-6);
        assert!(erf(6.0) > 0.999_999);
    }

    #[test]
    fn normal_cdf_standard_values() {
        assert!((normal_cdf(0.0) - 0.5).abs() < 1e-7);
        assert!((normal_cdf(1.959_964) - 0.975).abs() < 1e-5);
        assert!((normal_cdf(-1.644_854) - 0.05).abs() < 1e-5);
    }

    #[test]
    #[should_panic(expected = "positive argument")]
    fn ln_gamma_rejects_non_positive() {
        let _ = ln_gamma(0.0);
    }
}
