//! Sketch-based mergeable summaries.
//!
//! [`Summary`](crate::Summary) keeps the whole sorted sample — exact,
//! but neither bounded in memory nor mergeable without re-pooling the
//! raw points. [`SketchSummary`] is the streaming counterpart: it feeds
//! every observation into an [`obs::metrics::Histogram`] (log-bucketed,
//! O(1) per record, exact count-wise merge), so per-worker summaries
//! combine into the pooled summary without anyone holding the pooled
//! sample. The price is resolution: quantiles come back as bucket
//! midpoints, with relative error at most
//! [`obs::metrics::HISTOGRAM_RELATIVE_ERROR`] for in-range positive
//! values — plenty below the run-to-run noise of any bandwidth figure.

use obs::metrics::Histogram;

/// A mergeable, bounded-memory summary of a positive-valued sample
/// (bandwidths, durations, byte counts).
///
/// Quantile queries rank over the counted population exactly — the
/// sketch never loses or double-counts a sample — and only the reported
/// *value* is quantized to its bucket midpoint. Merging two sketches
/// yields byte-for-byte the sketch of the concatenated sample, in any
/// order and under any partition.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct SketchSummary {
    hist: Histogram,
}

impl SketchSummary {
    /// An empty sketch.
    pub fn new() -> Self {
        SketchSummary {
            hist: Histogram::new(),
        }
    }

    /// Sketch a whole sample at once.
    pub fn from_sample(data: &[f64]) -> Self {
        let mut s = SketchSummary::new();
        for &x in data {
            s.observe(x);
        }
        s
    }

    /// Wrap an already-recorded histogram (e.g. one harvested from a
    /// metrics registry) in the summary interface.
    pub fn from_histogram(hist: Histogram) -> Self {
        SketchSummary { hist }
    }

    /// Record one observation. Zeros are counted exactly; negatives and
    /// NaNs are tallied but excluded from quantiles, like the underlying
    /// [`Histogram`].
    pub fn observe(&mut self, x: f64) {
        self.hist.observe(x);
    }

    /// Absorb another sketch. Order- and partition-independent: any way
    /// of splitting a sample across sketches merges to the same state.
    pub fn merge(&mut self, other: &SketchSummary) {
        self.hist.merge(&other.hist);
    }

    /// Samples participating in quantiles (excludes negatives and NaNs).
    pub fn n(&self) -> u64 {
        self.hist.count()
    }

    /// Total recorded samples, including negatives and NaNs.
    pub fn recorded(&self) -> u64 {
        self.hist.recorded()
    }

    /// Estimated mean of the counted population (NaN when empty), from
    /// bucket midpoints — same relative error bound as the quantiles.
    pub fn mean(&self) -> f64 {
        self.hist.estimated_mean()
    }

    /// Quantile estimate at `p ∈ [0, 1]`: the bucket midpoint of the
    /// sample at rank `ceil(p·n)`. For positive in-range values the
    /// relative error versus that exact sample is at most
    /// [`obs::metrics::HISTOGRAM_RELATIVE_ERROR`]. NaN when empty.
    ///
    /// # Panics
    /// Panics if `p` is outside `[0, 1]`.
    pub fn quantile(&self, p: f64) -> f64 {
        self.hist.quantile(p)
    }

    /// The median.
    pub fn p50(&self) -> f64 {
        self.quantile(0.50)
    }

    /// The 95th percentile.
    pub fn p95(&self) -> f64 {
        self.quantile(0.95)
    }

    /// The 99th percentile — the tail a mean hides.
    pub fn p99(&self) -> f64 {
        self.quantile(0.99)
    }

    /// Interquartile range `q3 - q1` from the sketched quantiles.
    pub fn iqr(&self) -> f64 {
        self.quantile(0.75) - self.quantile(0.25)
    }

    /// Borrow the underlying histogram (e.g. to export it through a
    /// metrics registry snapshot).
    pub fn histogram(&self) -> &Histogram {
        &self.hist
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Summary;
    use obs::metrics::HISTOGRAM_RELATIVE_ERROR;

    /// The exact value the sketch quantile approximates: the sample at
    /// rank `ceil(p·n)` (1-based) of the sorted data.
    fn rank_quantile(sorted: &[f64], p: f64) -> f64 {
        let n = sorted.len() as f64;
        let rank = ((p * n).ceil() as usize).clamp(1, sorted.len());
        sorted[rank - 1]
    }

    /// A deterministic positive sample spanning several octaves, shaped
    /// like a bandwidth distribution with a straggler tail.
    fn sample() -> Vec<f64> {
        (0..500)
            .map(|i| {
                let base = 800.0 + ((i * 37) % 211) as f64 * 3.0;
                if i % 50 == 0 {
                    base / 8.0 // straggler-struck reps
                } else {
                    base
                }
            })
            .collect()
    }

    #[test]
    fn quantile_error_stays_within_the_documented_bound() {
        let data = sample();
        let sketch = SketchSummary::from_sample(&data);
        let mut sorted = data.clone();
        sorted.sort_by(f64::total_cmp);
        for p in [0.01, 0.05, 0.25, 0.50, 0.75, 0.90, 0.95, 0.99, 1.0] {
            let exact = rank_quantile(&sorted, p);
            let est = sketch.quantile(p);
            let rel = (est - exact).abs() / exact;
            assert!(
                rel <= HISTOGRAM_RELATIVE_ERROR,
                "p={p}: sketch {est} vs exact {exact} ({rel:.4} relative, bound {HISTOGRAM_RELATIVE_ERROR})"
            );
        }
        // The mean carries the same midpoint quantization bound.
        let exact_mean = Summary::from_sample(&data).mean;
        let rel = (sketch.mean() - exact_mean).abs() / exact_mean;
        assert!(rel <= HISTOGRAM_RELATIVE_ERROR, "mean off by {rel:.4}");
    }

    #[test]
    fn merged_shards_equal_the_pooled_sketch() {
        let data = sample();
        let pooled = SketchSummary::from_sample(&data);
        // Any partition, any order: three uneven shards, merged tail-first.
        let mut merged = SketchSummary::from_sample(&data[451..]);
        merged.merge(&SketchSummary::from_sample(&data[7..451]));
        merged.merge(&SketchSummary::from_sample(&data[..7]));
        assert_eq!(merged, pooled);
        assert_eq!(merged.n(), data.len() as u64);
        assert_eq!(merged.p99(), pooled.p99());
    }

    #[test]
    fn empty_and_irregular_values() {
        let empty = SketchSummary::new();
        assert_eq!(empty.n(), 0);
        assert!(empty.p50().is_nan());
        assert!(empty.mean().is_nan());

        let mut s = SketchSummary::new();
        s.observe(0.0);
        s.observe(-3.0);
        s.observe(f64::NAN);
        s.observe(5.0);
        // Zeros count; negatives and NaNs are tallied but excluded.
        assert_eq!(s.n(), 2);
        assert_eq!(s.recorded(), 4);
        assert_eq!(s.quantile(0.25), 0.0);
    }
}
