//! Descriptive statistics and box plots.
//!
//! Lesson 5 of the paper is a methodology lesson: summarize carefully and
//! look at all the points. [`Summary`] keeps every quantity the figures
//! need (mean, sd, min/max band, quantiles) and [`BoxPlot`] reproduces
//! the Tukey box plots of Figs. 8 and 10.

use serde::{Deserialize, Serialize};

/// Descriptive statistics of a sample.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Summary {
    /// Sample size.
    pub n: usize,
    /// Arithmetic mean.
    pub mean: f64,
    /// Sample standard deviation (n-1 denominator; 0 for n < 2).
    pub sd: f64,
    /// Smallest observation.
    pub min: f64,
    /// Largest observation.
    pub max: f64,
    /// Sorted copy of the data (kept for quantile queries).
    sorted: Vec<f64>,
}

impl Summary {
    /// Summarize a sample.
    ///
    /// # Panics
    /// Panics on an empty sample or non-finite values.
    pub fn from_sample(data: &[f64]) -> Self {
        assert!(!data.is_empty(), "cannot summarize an empty sample");
        assert!(
            data.iter().all(|x| x.is_finite()),
            "sample contains non-finite values"
        );
        let n = data.len();
        let mean = data.iter().sum::<f64>() / n as f64;
        let sd = if n > 1 {
            (data.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / (n - 1) as f64).sqrt()
        } else {
            0.0
        };
        let mut sorted = data.to_vec();
        sorted.sort_by(|a, b| a.partial_cmp(b).expect("finite values compare"));
        Summary {
            n,
            mean,
            sd,
            min: sorted[0],
            max: sorted[n - 1],
            sorted,
        }
    }

    /// Quantile by linear interpolation (R type 7, the R/NumPy default).
    ///
    /// # Panics
    /// Panics if `p` is outside `[0, 1]`.
    pub fn quantile(&self, p: f64) -> f64 {
        assert!((0.0..=1.0).contains(&p), "quantile p={p} outside [0,1]");
        if self.n == 1 {
            return self.sorted[0];
        }
        let h = p * (self.n - 1) as f64;
        let lo = h.floor() as usize;
        let hi = h.ceil() as usize;
        let frac = h - lo as f64;
        self.sorted[lo] * (1.0 - frac) + self.sorted[hi] * frac
    }

    /// The median.
    pub fn median(&self) -> f64 {
        self.quantile(0.5)
    }

    /// The median, under its tail-metrics name.
    pub fn p50(&self) -> f64 {
        self.quantile(0.50)
    }

    /// The 95th percentile (R type 7).
    pub fn p95(&self) -> f64 {
        self.quantile(0.95)
    }

    /// The 99th percentile (R type 7) — the tail a mean hides.
    pub fn p99(&self) -> f64 {
        self.quantile(0.99)
    }

    /// Interquartile range `q3 - q1`, the robust spread measure of the
    /// paper's box plots.
    pub fn iqr(&self) -> f64 {
        self.quantile(0.75) - self.quantile(0.25)
    }

    /// Whether the sample looks multi-modal: Sarle's bimodality
    /// coefficient above the uniform distribution's ~0.555 (see
    /// [`Summary::bimodality_coefficient`]). Degenerate samples
    /// (n < 4) report `false`.
    pub fn is_multimodal(&self) -> bool {
        self.bimodality_coefficient() > 0.555
    }

    /// Coefficient of variation `sd / mean` (0 when the mean is 0).
    pub fn cv(&self) -> f64 {
        if self.mean == 0.0 {
            0.0
        } else {
            self.sd / self.mean
        }
    }

    /// Sample skewness (adjusted Fisher–Pearson, `g1` with bias factor).
    /// Returns 0 for degenerate samples (n < 3 or zero variance).
    pub fn skewness(&self) -> f64 {
        if self.n < 3 || self.sd == 0.0 {
            return 0.0;
        }
        let n = self.n as f64;
        let m3 = self
            .sorted
            .iter()
            .map(|x| (x - self.mean).powi(3))
            .sum::<f64>()
            / n;
        let m2 = self
            .sorted
            .iter()
            .map(|x| (x - self.mean).powi(2))
            .sum::<f64>()
            / n;
        let g1 = m3 / m2.powf(1.5);
        (n * (n - 1.0)).sqrt() / (n - 2.0) * g1
    }

    /// Sample excess kurtosis (`g2` adjusted). Returns 0 for degenerate
    /// samples (n < 4 or zero variance).
    pub fn excess_kurtosis(&self) -> f64 {
        if self.n < 4 || self.sd == 0.0 {
            return 0.0;
        }
        let n = self.n as f64;
        let m4 = self
            .sorted
            .iter()
            .map(|x| (x - self.mean).powi(4))
            .sum::<f64>()
            / n;
        let m2 = self
            .sorted
            .iter()
            .map(|x| (x - self.mean).powi(2))
            .sum::<f64>()
            / n;
        let g2 = m4 / (m2 * m2) - 3.0;
        ((n + 1.0) * g2 + 6.0) * (n - 1.0) / ((n - 2.0) * (n - 3.0))
    }

    /// Sarle's bimodality coefficient: `(skew^2 + 1) / (kurt + 3(n-1)^2 /
    /// ((n-2)(n-3)))`. Values above ~0.555 (the uniform distribution's
    /// coefficient) suggest bi- or multi-modality — used to detect the
    /// bi-modal clouds of Fig. 6a programmatically.
    pub fn bimodality_coefficient(&self) -> f64 {
        if self.n < 4 {
            return 0.0;
        }
        let n = self.n as f64;
        let s = self.skewness();
        let k = self.excess_kurtosis();
        (s * s + 1.0) / (k + 3.0 * (n - 1.0).powi(2) / ((n - 2.0) * (n - 3.0)))
    }

    /// Borrow the sorted data.
    pub fn sorted(&self) -> &[f64] {
        &self.sorted
    }
}

/// Tukey box-plot statistics.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct BoxPlot {
    /// First quartile.
    pub q1: f64,
    /// Median.
    pub median: f64,
    /// Third quartile.
    pub q3: f64,
    /// Lowest observation within `q1 - 1.5 IQR`.
    pub whisker_lo: f64,
    /// Highest observation within `q3 + 1.5 IQR`.
    pub whisker_hi: f64,
    /// Observations outside the whiskers.
    pub outliers: Vec<f64>,
}

impl BoxPlot {
    /// Compute box-plot statistics for a sample.
    ///
    /// # Panics
    /// Panics on an empty sample (via [`Summary::from_sample`]).
    pub fn from_sample(data: &[f64]) -> Self {
        let s = Summary::from_sample(data);
        let q1 = s.quantile(0.25);
        let q3 = s.quantile(0.75);
        let iqr = q3 - q1;
        let lo_fence = q1 - 1.5 * iqr;
        let hi_fence = q3 + 1.5 * iqr;
        let whisker_lo = s
            .sorted()
            .iter()
            .copied()
            .find(|&x| x >= lo_fence)
            .expect("non-empty sample has a low whisker");
        let whisker_hi = s
            .sorted()
            .iter()
            .rev()
            .copied()
            .find(|&x| x <= hi_fence)
            .expect("non-empty sample has a high whisker");
        let outliers = s
            .sorted()
            .iter()
            .copied()
            .filter(|&x| x < lo_fence || x > hi_fence)
            .collect();
        BoxPlot {
            q1,
            median: s.median(),
            q3,
            whisker_lo,
            whisker_hi,
            outliers,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn basic_moments() {
        let s = Summary::from_sample(&[2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0]);
        assert_eq!(s.n, 8);
        assert!((s.mean - 5.0).abs() < 1e-12);
        // Sample sd with n-1: sqrt(32/7).
        assert!((s.sd - (32.0f64 / 7.0).sqrt()).abs() < 1e-12);
        assert_eq!(s.min, 2.0);
        assert_eq!(s.max, 9.0);
    }

    #[test]
    fn quantiles_match_r_type7() {
        // R: quantile(c(1,2,3,4), c(.25,.5,.75)) -> 1.75, 2.5, 3.25.
        let s = Summary::from_sample(&[1.0, 2.0, 3.0, 4.0]);
        assert!((s.quantile(0.25) - 1.75).abs() < 1e-12);
        assert!((s.median() - 2.5).abs() < 1e-12);
        assert!((s.quantile(0.75) - 3.25).abs() < 1e-12);
        assert_eq!(s.quantile(0.0), 1.0);
        assert_eq!(s.quantile(1.0), 4.0);
    }

    #[test]
    fn single_observation() {
        let s = Summary::from_sample(&[42.0]);
        assert_eq!(s.mean, 42.0);
        assert_eq!(s.sd, 0.0);
        assert_eq!(s.median(), 42.0);
        assert_eq!(s.quantile(0.9), 42.0);
    }

    #[test]
    fn cv_is_relative_spread() {
        let s = Summary::from_sample(&[90.0, 100.0, 110.0]);
        assert!((s.cv() - 10.0 / 100.0).abs() < 1e-12);
    }

    #[test]
    fn skewness_sign() {
        let right = Summary::from_sample(&[1.0, 1.0, 1.0, 2.0, 10.0]);
        assert!(right.skewness() > 0.5);
        let left = Summary::from_sample(&[-10.0, -2.0, -1.0, -1.0, -1.0]);
        assert!(left.skewness() < -0.5);
        let sym = Summary::from_sample(&[1.0, 2.0, 3.0, 4.0, 5.0]);
        assert!(sym.skewness().abs() < 1e-12);
    }

    #[test]
    fn bimodality_detects_two_clusters() {
        // Two tight clusters — the shape of Fig. 6a's stripe-2 cloud.
        let mut data = vec![];
        for i in 0..50 {
            data.push(1100.0 + (i % 5) as f64);
            data.push(2200.0 + (i % 5) as f64);
        }
        let bc = Summary::from_sample(&data).bimodality_coefficient();
        assert!(bc > 0.555, "bimodality coefficient {bc}");

        // A tight unimodal sample stays below the threshold.
        let uni: Vec<f64> = (0..100)
            .map(|i| 1000.0 + ((i * 37) % 97) as f64 * 0.1)
            .collect();
        let bc_uni = Summary::from_sample(&uni).bimodality_coefficient();
        assert!(bc_uni < 0.60, "unimodal coefficient {bc_uni}");
    }

    #[test]
    fn tail_quantiles_on_known_distribution() {
        // 0..=100: p-th percentile of this grid is exactly p (R type 7).
        let data: Vec<f64> = (0..=100).map(f64::from).collect();
        let s = Summary::from_sample(&data);
        assert!((s.p50() - 50.0).abs() < 1e-12);
        assert!((s.p95() - 95.0).abs() < 1e-12);
        assert!((s.p99() - 99.0).abs() < 1e-12);
        assert!((s.iqr() - 50.0).abs() < 1e-12);
    }

    #[test]
    fn tail_quantiles_interpolate() {
        // R: quantile(c(10,20,30,40), c(.95,.99)) -> 38.5, 39.7.
        let s = Summary::from_sample(&[10.0, 20.0, 30.0, 40.0]);
        assert!((s.p95() - 38.5).abs() < 1e-12);
        assert!((s.p99() - 39.7).abs() < 1e-12);
        assert!((s.iqr() - (32.5 - 17.5)).abs() < 1e-12);
    }

    #[test]
    fn modality_check_separates_shapes() {
        // Two tight clusters: multimodal.
        let mut bimodal = vec![];
        for i in 0..50 {
            bimodal.push(1.0 + (i % 5) as f64 * 0.01);
            bimodal.push(2.0 + (i % 5) as f64 * 0.01);
        }
        assert!(Summary::from_sample(&bimodal).is_multimodal());

        // A peaked symmetric sample (triangular counts): unimodal.
        let mut peaked = vec![];
        for i in 0..10i32 {
            let copies = 10 - (i - 5).abs();
            for _ in 0..copies {
                peaked.push(f64::from(i));
            }
        }
        assert!(!Summary::from_sample(&peaked).is_multimodal());

        // Degenerate samples never claim multimodality.
        assert!(!Summary::from_sample(&[1.0, 2.0]).is_multimodal());
    }

    #[test]
    fn boxplot_quartiles_and_whiskers() {
        let data: Vec<f64> = (1..=11).map(f64::from).collect();
        let b = BoxPlot::from_sample(&data);
        assert!((b.q1 - 3.5).abs() < 1e-12);
        assert!((b.median - 6.0).abs() < 1e-12);
        assert!((b.q3 - 8.5).abs() < 1e-12);
        assert_eq!(b.whisker_lo, 1.0);
        assert_eq!(b.whisker_hi, 11.0);
        assert!(b.outliers.is_empty());
    }

    #[test]
    fn boxplot_flags_outliers() {
        let mut data: Vec<f64> = (1..=11).map(f64::from).collect();
        data.push(100.0);
        data.push(-50.0);
        let b = BoxPlot::from_sample(&data);
        assert_eq!(b.outliers.len(), 2);
        assert!(b.outliers.contains(&100.0));
        assert!(b.outliers.contains(&-50.0));
        // Whiskers stay at the most extreme non-outlier points.
        assert_eq!(b.whisker_lo, 1.0);
        assert_eq!(b.whisker_hi, 11.0);
    }

    #[test]
    #[should_panic(expected = "empty sample")]
    fn empty_sample_rejected() {
        let _ = Summary::from_sample(&[]);
    }

    #[test]
    #[should_panic(expected = "non-finite")]
    fn non_finite_rejected() {
        let _ = Summary::from_sample(&[1.0, f64::NAN]);
    }
}
