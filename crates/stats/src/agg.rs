//! Aggregate bandwidth of concurrent applications — the paper's
//! Equation 1.
//!
//! For a set `A` of concurrent applications with start/end times and
//! written volumes, the aggregate bandwidth is
//!
//! ```text
//!        sum_i vol_i
//!  ---------------------------------
//!  max_i(end_i) - min_i(start_i)
//! ```

use serde::{Deserialize, Serialize};

/// One application's observed execution interval and volume.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct AppInterval {
    /// Start time in seconds.
    pub start_s: f64,
    /// End time in seconds.
    pub end_s: f64,
    /// Bytes written.
    pub volume_bytes: u64,
}

impl AppInterval {
    /// The application's individual bandwidth in bytes/second.
    ///
    /// # Panics
    /// Panics if `end_s <= start_s`.
    pub fn individual_bandwidth(&self) -> f64 {
        assert!(
            self.end_s > self.start_s,
            "degenerate interval [{}, {}]",
            self.start_s,
            self.end_s
        );
        self.volume_bytes as f64 / (self.end_s - self.start_s)
    }
}

/// Equation 1: aggregate bandwidth in bytes/second of a set of
/// concurrent applications.
///
/// # Panics
/// Panics on an empty set or a degenerate global interval.
pub fn aggregate_bandwidth(apps: &[AppInterval]) -> f64 {
    assert!(
        !apps.is_empty(),
        "Equation 1 needs at least one application"
    );
    let start = apps.iter().map(|a| a.start_s).fold(f64::INFINITY, f64::min);
    let end = apps
        .iter()
        .map(|a| a.end_s)
        .fold(f64::NEG_INFINITY, f64::max);
    assert!(end > start, "degenerate global interval [{start}, {end}]");
    let volume: u64 = apps.iter().map(|a| a.volume_bytes).sum();
    volume as f64 / (end - start)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_app_equals_individual_bandwidth() {
        let a = AppInterval {
            start_s: 1.0,
            end_s: 5.0,
            volume_bytes: 400,
        };
        assert_eq!(aggregate_bandwidth(&[a]), a.individual_bandwidth());
        assert_eq!(a.individual_bandwidth(), 100.0);
    }

    #[test]
    fn overlapping_apps_use_global_interval() {
        let apps = [
            AppInterval {
                start_s: 0.0,
                end_s: 10.0,
                volume_bytes: 1000,
            },
            AppInterval {
                start_s: 2.0,
                end_s: 12.0,
                volume_bytes: 1000,
            },
        ];
        // Global interval [0, 12], 2000 bytes.
        assert!((aggregate_bandwidth(&apps) - 2000.0 / 12.0).abs() < 1e-12);
    }

    #[test]
    fn perfectly_aligned_apps_sum_bandwidths() {
        let apps = [
            AppInterval {
                start_s: 0.0,
                end_s: 10.0,
                volume_bytes: 500,
            },
            AppInterval {
                start_s: 0.0,
                end_s: 10.0,
                volume_bytes: 700,
            },
            AppInterval {
                start_s: 0.0,
                end_s: 10.0,
                volume_bytes: 300,
            },
        ];
        assert!((aggregate_bandwidth(&apps) - 150.0).abs() < 1e-12);
    }

    #[test]
    fn aggregate_bounded_by_sum_of_individuals() {
        // Equation 1 never exceeds the sum of individual bandwidths.
        let apps = [
            AppInterval {
                start_s: 0.0,
                end_s: 4.0,
                volume_bytes: 400,
            },
            AppInterval {
                start_s: 3.0,
                end_s: 9.0,
                volume_bytes: 300,
            },
        ];
        let agg = aggregate_bandwidth(&apps);
        let sum: f64 = apps.iter().map(|a| a.individual_bandwidth()).sum();
        assert!(agg <= sum + 1e-12);
    }

    #[test]
    #[should_panic(expected = "at least one application")]
    fn empty_set_rejected() {
        let _ = aggregate_bandwidth(&[]);
    }

    #[test]
    #[should_panic(expected = "degenerate global interval")]
    fn degenerate_interval_rejected() {
        let _ = aggregate_bandwidth(&[AppInterval {
            start_s: 1.0,
            end_s: 1.0,
            volume_bytes: 10,
        }]);
    }
}
