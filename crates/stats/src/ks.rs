//! Kolmogorov–Smirnov tests.
//!
//! The paper's Fig. 13 analysis checks normality with a KS test before
//! applying Welch's t-test. Two variants are provided:
//!
//! * [`ks_test`] — one-sample KS against a fully specified CDF, with the
//!   asymptotic p-value (Stephens' small-sample correction);
//! * [`ks_normality_test`] — against a normal with mean/sd estimated
//!   from the data. Estimating parameters makes the nominal KS p-value
//!   conservative (the Lilliefors situation) — fine for the paper's
//!   usage, where the test is a gate ("cannot reject normality") rather
//!   than a precise probability; the doc comment flags the caveat.

use crate::special::normal_cdf;
use crate::summary::Summary;
use serde::{Deserialize, Serialize};

/// Result of a Kolmogorov–Smirnov test.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct KsResult {
    /// The KS statistic `D` (max CDF discrepancy).
    pub d: f64,
    /// Approximate p-value.
    pub p: f64,
}

/// Kolmogorov survival function `Q(lambda) = 2 sum (-1)^{j-1} e^{-2 j^2
/// lambda^2}`.
fn kolmogorov_q(lambda: f64) -> f64 {
    if lambda < 1e-3 {
        return 1.0;
    }
    let mut sum = 0.0;
    let mut sign = 1.0;
    for j in 1..=100 {
        let term = (-2.0 * (j as f64).powi(2) * lambda * lambda).exp();
        sum += sign * term;
        sign = -sign;
        if term < 1e-12 {
            break;
        }
    }
    (2.0 * sum).clamp(0.0, 1.0)
}

/// One-sample KS test of `data` against the CDF `f`.
///
/// # Panics
/// Panics on an empty sample.
pub fn ks_test(data: &[f64], f: impl Fn(f64) -> f64) -> KsResult {
    assert!(!data.is_empty(), "KS test needs a non-empty sample");
    let n = data.len();
    let mut sorted = data.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).expect("finite values"));
    let mut d: f64 = 0.0;
    for (i, &x) in sorted.iter().enumerate() {
        let cdf = f(x);
        let ecdf_hi = (i + 1) as f64 / n as f64;
        let ecdf_lo = i as f64 / n as f64;
        d = d.max((ecdf_hi - cdf).abs()).max((cdf - ecdf_lo).abs());
    }
    // Stephens' correction for finite n.
    let sqrt_n = (n as f64).sqrt();
    let lambda = (sqrt_n + 0.12 + 0.11 / sqrt_n) * d;
    KsResult {
        d,
        p: kolmogorov_q(lambda),
    }
}

/// KS test against a normal with parameters estimated from the sample.
///
/// **Caveat**: the returned p-value uses the standard KS distribution,
/// which is conservative when parameters are estimated (Lilliefors). The
/// paper uses the test in exactly this gate-keeping role.
///
/// # Panics
/// Panics if the sample has fewer than 3 observations or zero variance.
pub fn ks_normality_test(data: &[f64]) -> KsResult {
    assert!(
        data.len() >= 3,
        "normality test needs at least 3 observations"
    );
    let s = Summary::from_sample(data);
    assert!(s.sd > 0.0, "normality test undefined for constant samples");
    ks_test(data, |x| normal_cdf((x - s.mean) / s.sd))
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;
    use simcore_test_rng::rng;

    /// Local shim: deterministic RNG without depending on simcore.
    mod simcore_test_rng {
        use rand::SeedableRng;
        pub fn rng(seed: u64) -> rand_chacha::ChaCha8Rng {
            rand_chacha::ChaCha8Rng::seed_from_u64(seed)
        }
    }

    #[test]
    fn d_statistic_hand_computed() {
        // Data {0.25, 0.75} against Uniform(0,1):
        // at 0.25: |0.5 - 0.25| = 0.25, |0.25 - 0| = 0.25
        // at 0.75: |1.0 - 0.75| = 0.25, |0.75 - 0.5| = 0.25 -> D = 0.25.
        let r = ks_test(&[0.25, 0.75], |x| x.clamp(0.0, 1.0));
        assert!((r.d - 0.25).abs() < 1e-12);
    }

    #[test]
    fn uniform_sample_against_uniform_cdf_high_p() {
        let mut g = rng(1);
        let data: Vec<f64> = (0..200).map(|_| g.gen::<f64>()).collect();
        let r = ks_test(&data, |x| x.clamp(0.0, 1.0));
        assert!(r.p > 0.05, "p {}", r.p);
        assert!(r.d < 0.1, "d {}", r.d);
    }

    #[test]
    fn uniform_sample_against_normal_low_p() {
        // A uniform on [0,1] scaled wide is clearly not standard normal.
        let mut g = rng(2);
        let data: Vec<f64> = (0..300).map(|_| g.gen::<f64>() * 10.0 - 5.0).collect();
        let r = ks_test(&data, normal_cdf);
        assert!(r.p < 1e-6, "p {}", r.p);
    }

    #[test]
    fn normal_sample_passes_normality_gate() {
        let mut g = rng(3);
        // Box-Muller normals.
        let data: Vec<f64> = (0..150)
            .map(|_| {
                let u1: f64 = 1.0 - g.gen::<f64>();
                let u2: f64 = g.gen();
                10.0 + 3.0 * (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos()
            })
            .collect();
        let r = ks_normality_test(&data);
        assert!(r.p > 0.05, "normal data rejected: p {}", r.p);
    }

    #[test]
    fn bimodal_sample_fails_normality_gate() {
        let mut data = Vec::new();
        for i in 0..60 {
            data.push(1100.0 + (i % 7) as f64);
            data.push(2200.0 + (i % 7) as f64);
        }
        let r = ks_normality_test(&data);
        assert!(r.p < 0.01, "bimodal data passed: p {}", r.p);
    }

    #[test]
    fn kolmogorov_q_endpoints() {
        assert_eq!(kolmogorov_q(0.0), 1.0);
        assert!(kolmogorov_q(0.5) > 0.9);
        // Known value: Q(1.358) ~ 0.05 (the 5% critical point).
        let q = kolmogorov_q(1.358);
        assert!((q - 0.05).abs() < 0.002, "Q(1.358) = {q}");
        assert!(kolmogorov_q(3.0) < 1e-6);
    }

    #[test]
    #[should_panic(expected = "non-empty")]
    fn empty_sample_rejected() {
        let _ = ks_test(&[], |x| x);
    }

    #[test]
    #[should_panic(expected = "constant samples")]
    fn constant_sample_rejected_for_normality() {
        let _ = ks_normality_test(&[5.0, 5.0, 5.0]);
    }
}
