//! Welch's two-sample t-test (unequal variances).
//!
//! The paper applies exactly this test (§IV-D) to compare the bandwidth
//! of two concurrent applications when they share all four targets vs
//! when they share none, obtaining p = 0.9031 — i.e. no significant
//! difference. `fig13` reruns that analysis on simulated data.

use crate::special::student_t_cdf;
use serde::{Deserialize, Serialize};

/// Result of a Welch two-sample t-test.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct WelchResult {
    /// The t statistic (`mean_a - mean_b` over the pooled standard error).
    pub t: f64,
    /// Welch–Satterthwaite degrees of freedom.
    pub df: f64,
    /// Two-sided p-value.
    pub p_two_sided: f64,
    /// Mean of the first sample.
    pub mean_a: f64,
    /// Mean of the second sample.
    pub mean_b: f64,
}

impl WelchResult {
    /// Whether the difference is significant at the given level.
    pub fn significant_at(&self, alpha: f64) -> bool {
        self.p_two_sided < alpha
    }
}

/// Run Welch's t-test on two samples.
///
/// ```
/// use iostats::welch_t_test;
/// let a = [1.0, 2.0, 3.0, 4.0, 5.0];
/// let b = [2.0, 4.0, 6.0, 8.0, 10.0];
/// let r = welch_t_test(&a, &b);
/// assert!((r.t - -1.8974).abs() < 1e-4);
/// assert!(!r.significant_at(0.05));
/// ```
///
/// # Panics
/// Panics if either sample has fewer than 2 observations or both samples
/// have zero variance (the statistic is undefined).
pub fn welch_t_test(a: &[f64], b: &[f64]) -> WelchResult {
    assert!(
        a.len() >= 2 && b.len() >= 2,
        "Welch's test needs at least 2 observations per sample (got {} and {})",
        a.len(),
        b.len()
    );
    let na = a.len() as f64;
    let nb = b.len() as f64;
    let mean_a = a.iter().sum::<f64>() / na;
    let mean_b = b.iter().sum::<f64>() / nb;
    let var_a = a.iter().map(|x| (x - mean_a).powi(2)).sum::<f64>() / (na - 1.0);
    let var_b = b.iter().map(|x| (x - mean_b).powi(2)).sum::<f64>() / (nb - 1.0);
    let se2 = var_a / na + var_b / nb;
    assert!(
        se2 > 0.0,
        "both samples are constant: t statistic undefined"
    );
    let t = (mean_a - mean_b) / se2.sqrt();
    let df = se2 * se2 / ((var_a / na).powi(2) / (na - 1.0) + (var_b / nb).powi(2) / (nb - 1.0));
    let p_two_sided = 2.0 * student_t_cdf(-t.abs(), df);
    WelchResult {
        t,
        df,
        p_two_sided,
        mean_a,
        mean_b,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_case_small_samples() {
        // Reference values computed independently (Simpson integration of
        // the beta density): t = -1.897367, df = 5.882353, p = 0.107531.
        let a = [1.0, 2.0, 3.0, 4.0, 5.0];
        let b = [2.0, 4.0, 6.0, 8.0, 10.0];
        let r = welch_t_test(&a, &b);
        assert!((r.t - -1.897_366_596).abs() < 1e-8, "t {}", r.t);
        assert!((r.df - 5.882_352_941).abs() < 1e-8, "df {}", r.df);
        assert!(
            (r.p_two_sided - 0.107_531_19).abs() < 1e-6,
            "p {}",
            r.p_two_sided
        );
    }

    #[test]
    fn known_case_textbook_example() {
        // The classic fused-data example (also R's documentation):
        // t = -2.8352638, df = 27.7136, p = 0.0084527.
        let a = [
            27.5, 21.0, 19.0, 23.6, 17.0, 17.9, 16.9, 20.1, 21.9, 22.6, 23.1, 19.6, 19.0, 21.7,
            21.4,
        ];
        let b = [
            27.1, 22.0, 20.8, 23.4, 23.4, 23.5, 25.8, 22.0, 24.8, 20.2, 21.9, 22.1, 22.9, 30.0,
            23.9,
        ];
        let r = welch_t_test(&a, &b);
        assert!((r.t - -2.835_263_8).abs() < 1e-6, "t {}", r.t);
        assert!((r.df - 27.713_626).abs() < 1e-4, "df {}", r.df);
        assert!(
            (r.p_two_sided - 0.008_452_73).abs() < 1e-6,
            "p {}",
            r.p_two_sided
        );
        assert!(r.significant_at(0.05));
        assert!(!r.significant_at(0.001));
    }

    #[test]
    fn identical_distributions_give_high_p() {
        let a = [10.0, 11.0, 9.0, 10.5, 9.5, 10.2, 9.8];
        let b = [10.1, 10.9, 9.1, 10.4, 9.6, 10.1, 9.9];
        let r = welch_t_test(&a, &b);
        assert!(r.p_two_sided > 0.5, "p {}", r.p_two_sided);
        assert!(!r.significant_at(0.05));
    }

    #[test]
    fn clearly_different_means_give_tiny_p() {
        let a: Vec<f64> = (0..30).map(|i| 100.0 + (i % 7) as f64).collect();
        let b: Vec<f64> = (0..30).map(|i| 200.0 + (i % 5) as f64).collect();
        let r = welch_t_test(&a, &b);
        assert!(r.p_two_sided < 1e-10, "p {}", r.p_two_sided);
        assert!(r.t < 0.0);
    }

    #[test]
    fn test_is_antisymmetric() {
        let a = [1.0, 3.0, 5.0, 7.0];
        let b = [2.0, 4.0, 6.0, 9.0];
        let r1 = welch_t_test(&a, &b);
        let r2 = welch_t_test(&b, &a);
        assert!((r1.t + r2.t).abs() < 1e-12);
        assert!((r1.p_two_sided - r2.p_two_sided).abs() < 1e-12);
        assert!((r1.df - r2.df).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "at least 2 observations")]
    fn tiny_samples_rejected() {
        let _ = welch_t_test(&[1.0], &[2.0, 3.0]);
    }

    #[test]
    #[should_panic(expected = "constant")]
    fn constant_samples_rejected() {
        let _ = welch_t_test(&[2.0, 2.0, 2.0], &[2.0, 2.0]);
    }
}
